// Crash and fault torture for the storage engine.
//
// The torture script below drives one store through every mutation protocol
// that carries a TSVIZ_CRASHPOINT: WAL rotation, flush commit, compaction
// swap/unlink, TTL tombstone and partition drop. Each crash test forks a
// child, arms exactly one crash point, runs the script until the child
// _Exits at that point (simulating a kill), then recovers in the parent by
// re-running the entire script and asserts the final M4 representation is
// bit-identical to a twin store that never crashed. The equivalence
// argument: the script is deterministic and last-writer-wins per timestamp,
// re-run versions exceed every surviving pre-crash version, and duplicate
// points carry identical (t, v) — so any interleaving of surviving partial
// state with a full re-run converges to the twin's logical state.
//
// The fault sweeps then re-open and query the same store under randomized
// EIO / short-read injection: any Status outcome is acceptable, crashing or
// wrong-but-ok results are not.

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/env.h"
#include "m4/m4_lsm.h"
#include "storage/file_reader.h"
#include "storage/quarantine.h"
#include "storage/store.h"
#include "test_util.h"

namespace tsviz {
namespace {

// Every crash point registered in src/. tools/check_crashpoints.py verifies
// this list against the source, and CrashPointDiscovery verifies the script
// actually reaches each entry.
const char* const kAllCrashPoints[] = {
    "flush.after_rotate",  "flush.after_data",    "flush.after_commit",
    "wal.rotate.after_rename", "compact.after_data", "compact.after_swap",
    "compact.after_unlink", "ttl.after_tombstone", "ttl.after_drop",
};

StoreConfig TortureConfig(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.partition_interval_ms = 100;
  config.points_per_chunk = 50;
  config.memtable_flush_threshold = 100000;  // flushes are explicit only
  config.encoding.page_size_points = 25;
  config.durable_fsync = true;
  return config;
}

// The deterministic workload. Must reach every name in kAllCrashPoints.
Status RunTortureScript(const std::string& dir) {
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<TsStore> store,
                         TsStore::Open(TortureConfig(dir)));
  // Phase 1: out-of-order writes spanning 4 partitions, then a flush (WAL
  // rotation + data files + commit) and a range delete.
  std::vector<Point> batch1;
  for (int64_t i = 0; i < 400; ++i) {
    const int64_t t = (i * 37) % 400;  // 37 ⊥ 400: a permutation
    batch1.push_back({t, static_cast<double>(t) * 0.5});
  }
  TSVIZ_RETURN_IF_ERROR(store->WriteAll(batch1));
  TSVIZ_RETURN_IF_ERROR(store->Flush());
  TSVIZ_RETURN_IF_ERROR(store->DeleteRange(TimeRange(50, 149)));
  // Phase 2: fresh partitions plus overwrites above the tombstone, then a
  // full compaction (merge + swap + unlink of the replaced files).
  std::vector<Point> batch2;
  for (int64_t t = 400; t < 800; ++t) {
    batch2.push_back({t, static_cast<double>(t) * 1.25});
  }
  for (int64_t t = 100; t < 200; ++t) {
    batch2.push_back({t, 1000.0 + static_cast<double>(t)});
  }
  TSVIZ_RETURN_IF_ERROR(store->WriteAll(batch2));
  TSVIZ_RETURN_IF_ERROR(store->Flush());
  TSVIZ_RETURN_IF_ERROR(store->Compact());
  // Phase 3: newest data, then TTL expiry — watermark 999 - 500 = 499
  // appends a tombstone and drops partitions p0..p3 outright.
  std::vector<Point> batch3;
  for (int64_t t = 800; t < 1000; ++t) {
    batch3.push_back({t, static_cast<double>(t) * -0.25});
  }
  TSVIZ_RETURN_IF_ERROR(store->WriteAll(batch3));
  TSVIZ_RETURN_IF_ERROR(store->Flush());
  TSVIZ_RETURN_IF_ERROR(store->ExpireTtl(500));
  return Status::OK();
}

Result<M4Result> QueryTortureResult(const std::string& dir) {
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<TsStore> store,
                         TsStore::Open(TortureConfig(dir)));
  const M4Query query{0, 1000, 25};
  return RunM4Lsm(*store, query, nullptr);
}

// Strict equality, not RowsEquivalent: recovery must reproduce the exact
// representation, not merely a pixel-equivalent one.
void AssertResultsIdentical(const M4Result& got, const M4Result& want,
                            const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].has_data, want[i].has_data) << label << " span " << i;
    if (!got[i].has_data) continue;
    EXPECT_EQ(got[i].first, want[i].first) << label << " span " << i;
    EXPECT_EQ(got[i].last, want[i].last) << label << " span " << i;
    EXPECT_EQ(got[i].bottom, want[i].bottom) << label << " span " << i;
    EXPECT_EQ(got[i].top, want[i].top) << label << " span " << i;
  }
}

// Runs the script once in-process and checks every registered crash point
// was traversed — a crash point the script cannot reach would make the kill
// tests below vacuous.
TEST(FaultTortureTest, CrashPointDiscovery) {
  TempDir dir;
  ASSERT_OK(RunTortureScript(dir.path()));
  const std::vector<std::string> seen = SeenCrashPoints();
  for (const char* name : kAllCrashPoints) {
    EXPECT_TRUE(std::find(seen.begin(), seen.end(), name) != seen.end())
        << "torture script never reached crash point " << name;
  }
}

TEST(FaultTortureTest, KillAtEveryCrashPointRecoversBitIdentical) {
  // The never-crashed twin, computed once.
  TempDir twin_dir;
  ASSERT_OK(RunTortureScript(twin_dir.path()));
  M4Result twin;
  ASSERT_OK_AND_ASSIGN(twin, QueryTortureResult(twin_dir.path()));
  ASSERT_FALSE(twin.empty());

  for (const char* name : kAllCrashPoints) {
    TempDir dir;
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: die at the armed point. Completing the script means the
      // point was never reached; report that distinctly.
      ArmCrashPoint(name);
      const Status status = RunTortureScript(dir.path());
      std::_Exit(status.ok() ? 0 : 3);
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << name;
    ASSERT_EQ(WEXITSTATUS(wstatus), kCrashPointExitCode)
        << name << ": child exited " << WEXITSTATUS(wstatus)
        << " (0 = script completed without reaching the point)";

    // Recover: re-open (which replays WAL segments and sweeps *.tmp) by
    // re-running the whole script, then demand the twin's exact answer.
    const Status recovery = RunTortureScript(dir.path());
    ASSERT_TRUE(recovery.ok())
        << "recovery after " << name << ": " << recovery.ToString();
    M4Result recovered;
    ASSERT_OK_AND_ASSIGN(recovered, QueryTortureResult(dir.path()));
    AssertResultsIdentical(recovered, twin, name);
  }
}

// A store whose data survived a crash mid-flush must also recover without a
// full re-run: plain re-open, then query. The result covers at least what
// the pre-crash flushes committed; here we just demand a clean open and a
// successful query after every kill.
TEST(FaultTortureTest, PlainReopenAfterEveryKillServesQueries) {
  for (const char* name : kAllCrashPoints) {
    TempDir dir;
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ArmCrashPoint(name);
      const Status status = RunTortureScript(dir.path());
      std::_Exit(status.ok() ? 0 : 3);
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << name;
    ASSERT_EQ(WEXITSTATUS(wstatus), kCrashPointExitCode) << name;
    const Status reopened = QueryTortureResult(dir.path()).status();
    ASSERT_TRUE(reopened.ok())
        << "re-open after " << name << ": " << reopened.ToString();
  }
}

// Randomized EIO and short-read sweeps over a real store. Faults only
// attach to files opened after SetFaultConfig, so the store is built clean
// and re-opened under injection. Every combination must come back as a
// Status — an injected fault may fail the open or the query, degrade mode
// may heal it via quarantine — but the process must never crash, and a
// successful degraded query must say so.
TEST(FaultTortureTest, FaultSweepNeverCrashes) {
  TempDir dir;
  ASSERT_OK(RunTortureScript(dir.path()));

  int opens_ok = 0;
  int queries_ok = 0;
  for (int fault_kind = 0; fault_kind < 2; ++fault_kind) {
    for (const uint64_t start : {0u, 2u, 5u, 11u, 23u}) {
      for (const uint64_t every : {1u, 3u, 7u}) {
        ChunkQuarantine::Instance().Clear();
        FaultConfig config;
        config.seed = start * 31 + every;
        config.start_after = start;
        if (fault_kind == 0) {
          config.eio_every = every;
        } else {
          config.short_read_every = every;
        }
        SetFaultConfig(config);

        auto store_or = TsStore::Open(TortureConfig(dir.path()));
        if (store_or.ok()) {
          ++opens_ok;
          TsStore& store = *store_or.value();
          QueryStats stats;
          const M4Query query{0, 1000, 25};
          std::optional<Result<M4Result>> result;
          const Status status = RunWithReadTolerance([&]() {
            stats.Reset();
            result.emplace(RunM4Lsm(store, query, &stats));
            return result->ok() ? Status::OK() : result->status();
          });
          if (status.ok()) {
            ++queries_ok;
            if (stats.chunks_quarantined > 0) {
              EXPECT_TRUE(stats.degraded)
                  << "quarantined chunks without degraded flag (start="
                  << start << " every=" << every << ")";
            }
          }
        }
        SetFaultConfig(FaultConfig{});  // restore the clean env
      }
    }
  }
  ChunkQuarantine::Instance().Clear();
  // With start_after high enough the open itself always succeeds; the
  // sweep must not have failed everything silently.
  EXPECT_GT(opens_ok, 0);
  EXPECT_GT(queries_ok, 0);
}

StoreConfig FlatConfig(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 50;
  config.memtable_flush_threshold = 100000;
  config.encoding.page_size_points = 25;
  return config;
}

std::string OnlyDataFile(const std::string& dir) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".tsdat") return entry.path().string();
  }
  return "";
}

void FlipByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0xff);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

// A single corrupt chunk: degrade mode quarantines it and answers from the
// surviving chunks with degraded=true; strict mode fails the query.
TEST(FaultTortureTest, CorruptChunkDegradesOrFailsByTolerance) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(FlatConfig(dir.path())));
    for (int64_t t = 0; t < 200; ++t) {
      ASSERT_OK(store->Write(t, static_cast<double>(t)));
    }
    ASSERT_OK(store->Flush());
  }
  const std::string path = OnlyDataFile(dir.path());
  ASSERT_FALSE(path.empty());
  uint64_t corrupt_offset = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<FileReader> reader,
                         FileReader::Open(path));
    ASSERT_EQ(reader->chunks().size(), 4u);
    const ChunkMetadata& victim = reader->chunks()[2];
    corrupt_offset = victim.data_offset + victim.data_length / 2;
  }
  FlipByteAt(path, corrupt_offset);

  ChunkQuarantine::Instance().Clear();
  SetReadTolerance(ReadTolerance::kDegrade);
  // 7 spans misalign with the 50-point chunks, so M4-LSM cannot answer
  // from chunk metadata alone — it must decode the corrupt page.
  const M4Query query{0, 200, 7};
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(FlatConfig(dir.path())));
    QueryStats stats;
    std::optional<Result<M4Result>> result;
    ASSERT_OK(RunWithReadTolerance([&]() {
      stats.Reset();
      result.emplace(RunM4Lsm(*store, query, &stats));
      return result->ok() ? Status::OK() : result->status();
    }));
    EXPECT_TRUE(stats.degraded);
    EXPECT_GE(stats.chunks_quarantined, 1u);
    EXPECT_GE(ChunkQuarantine::Instance().size(), 1u);
    // The surviving chunks still answer: spans away from the corrupt chunk
    // keep their data.
    const M4Result& rows = result->value();
    ASSERT_EQ(rows.size(), 7u);
    EXPECT_TRUE(rows[0].has_data);
    EXPECT_TRUE(rows[6].has_data);
  }

  // Strict mode: same file, fail-fast.
  ChunkQuarantine::Instance().Clear();
  SetReadTolerance(ReadTolerance::kStrict);
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(FlatConfig(dir.path())));
    const Status status = RunM4Lsm(*store, query, nullptr).status();
    EXPECT_FALSE(status.ok());
  }
  SetReadTolerance(ReadTolerance::kDegrade);
  ChunkQuarantine::Instance().Clear();
}

// A data file whose footer is destroyed: degrade mode opens the store
// without it (WARN + corruption_events), strict mode refuses to open.
TEST(FaultTortureTest, UnreadableFileSkippedOnRecoverByTolerance) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(FlatConfig(dir.path())));
    for (int64_t t = 0; t < 100; ++t) {
      ASSERT_OK(store->Write(t, 1.0));
    }
    ASSERT_OK(store->Flush());
  }
  const std::string path = OnlyDataFile(dir.path());
  ASSERT_FALSE(path.empty());
  const uint64_t size = std::filesystem::file_size(path);
  for (uint64_t back = 1; back <= 12; ++back) {
    FlipByteAt(path, size - back);  // destroy the trailer + footer tail
  }

  SetReadTolerance(ReadTolerance::kStrict);
  EXPECT_FALSE(TsStore::Open(FlatConfig(dir.path())).ok());

  SetReadTolerance(ReadTolerance::kDegrade);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(FlatConfig(dir.path())));
  EXPECT_EQ(store->NumFiles(), 0u);
  // The store stays writable: new flushes must not collide with the burned
  // file id.
  for (int64_t t = 100; t < 150; ++t) {
    ASSERT_OK(store->Write(t, 2.0));
  }
  ASSERT_OK(store->Flush());
  EXPECT_EQ(store->NumFiles(), 1u);
}

// Failed fsync is an error, not a crash: flushes report it and the store
// keeps functioning once the injection stops.
TEST(FaultTortureTest, FsyncFailureSurfacesAsStatus) {
  TempDir dir;
  FaultConfig config;
  config.fsync_fail_every = 1;
  SetFaultConfig(config);
  const uint64_t failures_before = EnvFsyncFailureCount();
  {
    auto store_or = TsStore::Open(TortureConfig(dir.path()));
    if (store_or.ok()) {
      std::unique_ptr<TsStore>& store = store_or.value();
      for (int64_t t = 0; t < 100; ++t) {
        (void)store->Write(t, 1.0);
      }
      (void)store->Flush();  // must fail or succeed, never crash
    }
  }
  SetFaultConfig(FaultConfig{});
  EXPECT_GT(EnvFsyncFailureCount(), failures_before);

  // The same directory recovers under a clean env.
  ASSERT_OK(RunTortureScript(dir.path()));
}

}  // namespace
}  // namespace tsviz
