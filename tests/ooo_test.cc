#include "workload/ooo.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "test_util.h"

namespace tsviz {
namespace {

TEST(OooTest, ZeroOverlapKeepsOrder) {
  std::vector<Point> points = MakeLinearSeries(1000, 0, 10);
  Rng rng(1);
  std::vector<Point> arrivals = MakeOverlappingOrder(points, 100, 0.0, &rng);
  EXPECT_EQ(arrivals, points);
  EXPECT_EQ(MeasureBatchOverlap(arrivals, 100), 0.0);
}

TEST(OooTest, PreservesMultisetOfPoints) {
  std::vector<Point> points = MakeLinearSeries(1000, 0, 10);
  Rng rng(2);
  std::vector<Point> arrivals = MakeOverlappingOrder(points, 100, 0.4, &rng);
  ASSERT_EQ(arrivals.size(), points.size());
  std::vector<Point> sorted = arrivals;
  std::sort(sorted.begin(), sorted.end(),
            [](const Point& a, const Point& b) { return a.t < b.t; });
  EXPECT_EQ(sorted, points);
}

class OverlapTarget : public ::testing::TestWithParam<double> {};

TEST_P(OverlapTarget, HitsRequestedOverlapFraction) {
  std::vector<Point> points = MakeLinearSeries(20000, 0, 10);
  Rng rng(3);
  std::vector<Point> arrivals =
      MakeOverlappingOrder(points, 100, GetParam(), &rng);
  double measured = MeasureBatchOverlap(arrivals, 100);
  EXPECT_NEAR(measured, GetParam(), 0.05) << "target " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Fractions, OverlapTarget,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.6));

TEST(OooTest, StoreExhibitsTheGeneratedOverlap) {
  std::vector<Point> points = MakeLinearSeries(10000, 0, 10);
  Rng rng(4);
  std::vector<Point> arrivals = MakeOverlappingOrder(points, 100, 0.3, &rng);

  TempDir dir;
  StoreConfig config;
  config.data_dir = dir.path();
  config.points_per_chunk = 100;
  config.memtable_flush_threshold = 100;
  auto store_or = TsStore::Open(config);
  ASSERT_TRUE(store_or.ok());
  std::unique_ptr<TsStore> store = std::move(store_or).value();
  ASSERT_OK(store->WriteAll(arrivals));
  ASSERT_OK(store->Flush());
  EXPECT_EQ(store->chunks().size(), 100u);
  EXPECT_NEAR(store->OverlapFraction(), 0.3, 0.05);
}

TEST(OooTest, TinyInputsAreSafe) {
  Rng rng(5);
  std::vector<Point> one = {{0, 1.0}};
  EXPECT_EQ(MakeOverlappingOrder(one, 10, 0.5, &rng), one);
  std::vector<Point> empty;
  EXPECT_TRUE(MakeOverlappingOrder(empty, 10, 0.5, &rng).empty());
  EXPECT_EQ(MeasureBatchOverlap(one, 10), 0.0);
}

}  // namespace
}  // namespace tsviz
