#include "workload/csv.h"

#include <gtest/gtest.h>

#include <fstream>

#include "test_util.h"

namespace tsviz {
namespace {

TEST(CsvTest, RoundTrip) {
  TempDir dir;
  std::string path = dir.path() + "/points.csv";
  std::vector<Point> points = {{-100, -1.5}, {0, 0.0}, {42, 3.25},
                               {1600000000000, 1e-9}};
  ASSERT_OK(SavePointsCsv(points, path));
  ASSERT_OK_AND_ASSIGN(std::vector<Point> loaded, LoadPointsCsv(path));
  EXPECT_EQ(loaded, points);
}

TEST(CsvTest, EmptySeries) {
  TempDir dir;
  std::string path = dir.path() + "/empty.csv";
  ASSERT_OK(SavePointsCsv({}, path));
  ASSERT_OK_AND_ASSIGN(std::vector<Point> loaded, LoadPointsCsv(path));
  EXPECT_TRUE(loaded.empty());
}

TEST(CsvTest, LoadsHeaderlessFile) {
  TempDir dir;
  std::string path = dir.path() + "/raw.csv";
  {
    std::ofstream out(path);
    out << "10,1.5\n20,2.5\n";
  }
  ASSERT_OK_AND_ASSIGN(std::vector<Point> loaded, LoadPointsCsv(path));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], (Point{10, 1.5}));
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadPointsCsv("/nonexistent/nowhere.csv").status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, MalformedLinesAreCorruption) {
  TempDir dir;
  std::string path = dir.path() + "/bad.csv";
  {
    std::ofstream out(path);
    out << "timestamp,value\n10;1.5\n";
  }
  EXPECT_EQ(LoadPointsCsv(path).status().code(), StatusCode::kCorruption);
  {
    // A non-numeric first line is treated as a header, so the bad
    // timestamp must sit on a later line to be an error.
    std::ofstream out(path);
    out << "timestamp,value\nabc,1.5\n";
  }
  EXPECT_EQ(LoadPointsCsv(path).status().code(), StatusCode::kCorruption);
  {
    std::ofstream out(path);
    out << "10,xyz\n";
  }
  EXPECT_EQ(LoadPointsCsv(path).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace tsviz
