#include "storage/chunk_metadata.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"

namespace tsviz {
namespace {

TEST(ComputeChunkStatsTest, BasicStats) {
  std::vector<Point> points = {
      {10, 5.0}, {20, -2.0}, {30, 9.0}, {40, 1.0}, {50, 3.0}};
  ChunkStats stats = ComputeChunkStats(points);
  EXPECT_EQ(stats.first, (Point{10, 5.0}));
  EXPECT_EQ(stats.last, (Point{50, 3.0}));
  EXPECT_EQ(stats.bottom, (Point{20, -2.0}));
  EXPECT_EQ(stats.top, (Point{30, 9.0}));
}

TEST(ComputeChunkStatsTest, TiesResolveToEarliestPoint) {
  std::vector<Point> points = {{1, 7.0}, {2, 7.0}, {3, 7.0}};
  ChunkStats stats = ComputeChunkStats(points);
  EXPECT_EQ(stats.bottom.t, 1);
  EXPECT_EQ(stats.top.t, 1);
}

TEST(ComputeChunkStatsTest, SinglePoint) {
  ChunkStats stats = ComputeChunkStats({{42, 3.14}});
  EXPECT_EQ(stats.first, stats.last);
  EXPECT_EQ(stats.bottom, stats.top);
  EXPECT_EQ(stats.first, (Point{42, 3.14}));
}

TEST(ComputeChunkStatsTest, NegativeValuesAndTimes) {
  std::vector<Point> points = {{-100, -1e9}, {-50, 1e9}, {0, 0.0}};
  ChunkStats stats = ComputeChunkStats(points);
  EXPECT_EQ(stats.first.t, -100);
  EXPECT_EQ(stats.bottom.v, -1e9);
  EXPECT_EQ(stats.top.v, 1e9);
}

ChunkMetadata SampleMetadata() {
  ChunkMetadata meta;
  meta.version = 17;
  meta.count = 1000;
  meta.stats.first = {100, 1.5};
  meta.stats.last = {10090, -2.5};
  meta.stats.bottom = {505, -77.25};
  meta.stats.top = {9999, 1234.0};
  meta.data_offset = 4096;
  meta.data_length = 8192;
  meta.pages = {{200, 100, 2090, 0, 900}, {300, 2100, 5090, 900, 1200},
                {500, 5100, 10090, 2100, 6092}};
  std::vector<Timestamp> ts;
  for (int i = 0; i < 1000; ++i) ts.push_back(100 + i * 10);
  meta.index = FitStepRegression(ts);
  return meta;
}

TEST(ChunkMetadataTest, SerializationRoundTrip) {
  ChunkMetadata meta = SampleMetadata();
  std::string buf;
  meta.SerializeTo(&buf);
  std::string_view view = buf;
  ASSERT_OK_AND_ASSIGN(ChunkMetadata decoded,
                       ChunkMetadata::Deserialize(&view));
  EXPECT_EQ(decoded, meta);
  EXPECT_TRUE(view.empty());
}

TEST(ChunkMetadataTest, IntervalComesFromFirstAndLast) {
  ChunkMetadata meta = SampleMetadata();
  EXPECT_EQ(meta.Interval(), TimeRange(100, 10090));
}

TEST(ChunkMetadataTest, TruncatedDeserializeFails) {
  ChunkMetadata meta = SampleMetadata();
  std::string buf;
  meta.SerializeTo(&buf);
  for (size_t keep = 0; keep < buf.size(); keep += 13) {
    std::string_view view(buf.data(), keep);
    EXPECT_FALSE(ChunkMetadata::Deserialize(&view).ok())
        << "prefix of " << keep << " bytes decoded successfully";
  }
}

TEST(ChunkMetadataTest, MultipleSerializedBackToBack) {
  ChunkMetadata a = SampleMetadata();
  ChunkMetadata b = SampleMetadata();
  b.version = 18;
  b.data_offset = 999;
  std::string buf;
  a.SerializeTo(&buf);
  b.SerializeTo(&buf);
  std::string_view view = buf;
  ASSERT_OK_AND_ASSIGN(ChunkMetadata da, ChunkMetadata::Deserialize(&view));
  ASSERT_OK_AND_ASSIGN(ChunkMetadata db, ChunkMetadata::Deserialize(&view));
  EXPECT_EQ(da, a);
  EXPECT_EQ(db, b);
  EXPECT_TRUE(view.empty());
}

}  // namespace
}  // namespace tsviz
