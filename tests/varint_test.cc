#include "encoding/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "test_util.h"

namespace tsviz {
namespace {

class Varint64RoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Varint64RoundTrip, RoundTrips) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  std::string_view view = buf;
  ASSERT_OK_AND_ASSIGN(uint64_t decoded, GetVarint64(&view));
  EXPECT_EQ(decoded, GetParam());
  EXPECT_TRUE(view.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, Varint64RoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                      (1ull << 32) - 1, 1ull << 32, (1ull << 56) + 123,
                      std::numeric_limits<uint64_t>::max()));

class SignedVarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintRoundTrip, RoundTrips) {
  std::string buf;
  PutSignedVarint64(&buf, GetParam());
  std::string_view view = buf;
  ASSERT_OK_AND_ASSIGN(int64_t decoded, GetSignedVarint64(&view));
  EXPECT_EQ(decoded, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, SignedVarintRoundTrip,
    ::testing::Values(0, 1, -1, 63, -64, 64, -65, 1'000'000, -1'000'000,
                      std::numeric_limits<int64_t>::max(),
                      std::numeric_limits<int64_t>::min()));

TEST(VarintTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(-123456789)), -123456789);
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    std::string_view view(buf.data(), cut);
    EXPECT_EQ(GetVarint64(&view).status().code(), StatusCode::kCorruption);
  }
}

TEST(VarintTest, OverlongVarintIsCorruption) {
  std::string buf(11, '\x80');  // continuation bits forever
  std::string_view view = buf;
  EXPECT_EQ(GetVarint64(&view).status().code(), StatusCode::kCorruption);
}

TEST(VarintTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ull << 35);
  std::string_view view = buf;
  EXPECT_EQ(GetVarint32(&view).status().code(), StatusCode::kCorruption);
}

TEST(FixedTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  ASSERT_EQ(buf.size(), 4u);
  std::string_view view = buf;
  ASSERT_OK_AND_ASSIGN(uint32_t v, GetFixed32(&view));
  EXPECT_EQ(v, 0xdeadbeefu);
}

TEST(FixedTest, Fixed64RoundTripAndLittleEndianLayout) {
  std::string buf;
  PutFixed64(&buf, 0x0102030405060708ull);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x08);
  EXPECT_EQ(static_cast<uint8_t>(buf[7]), 0x01);
  std::string_view view = buf;
  ASSERT_OK_AND_ASSIGN(uint64_t v, GetFixed64(&view));
  EXPECT_EQ(v, 0x0102030405060708ull);
}

TEST(FixedTest, TruncatedFixedIsCorruption) {
  std::string buf = "abc";
  std::string_view view = buf;
  EXPECT_EQ(GetFixed32(&view).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(GetFixed64(&view).status().code(), StatusCode::kCorruption);
}

TEST(LengthPrefixedTest, RoundTripIncludingEmpty) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  std::string payload(300, 'x');
  PutLengthPrefixed(&buf, payload);
  std::string_view view = buf;
  ASSERT_OK_AND_ASSIGN(std::string_view a, GetLengthPrefixed(&view));
  ASSERT_OK_AND_ASSIGN(std::string_view b, GetLengthPrefixed(&view));
  ASSERT_OK_AND_ASSIGN(std::string_view c, GetLengthPrefixed(&view));
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, "hello");
  EXPECT_EQ(c, payload);
  EXPECT_TRUE(view.empty());
}

TEST(LengthPrefixedTest, TruncatedPayloadIsCorruption) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  std::string_view view(buf.data(), buf.size() - 2);
  EXPECT_EQ(GetLengthPrefixed(&view).status().code(),
            StatusCode::kCorruption);
}

TEST(ChecksumTest, Fnv1aDistinguishesInputs) {
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64(std::string_view("\0", 1)));
  EXPECT_EQ(Fnv1a64("same"), Fnv1a64("same"));
}

}  // namespace
}  // namespace tsviz
