#include "index/step_regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "test_util.h"

namespace tsviz {
namespace {

// Regular cadence with explicit gaps, mirroring the Figure 8(d) shape used
// throughout Section 3.5's examples.
std::vector<Timestamp> CadenceWithGaps(
    size_t n, Timestamp start, int64_t delta,
    const std::vector<std::pair<size_t, int64_t>>& gaps_after) {
  std::vector<Timestamp> ts;
  ts.reserve(n);
  Timestamp t = start;
  size_t gap_idx = 0;
  for (size_t i = 0; i < n; ++i) {
    ts.push_back(t);
    t += delta;
    if (gap_idx < gaps_after.size() && gaps_after[gap_idx].first == i + 1) {
      t += gaps_after[gap_idx].second;
      ++gap_idx;
    }
  }
  return ts;
}

TEST(StepRegressionTest, PerfectlyRegularSeries) {
  std::vector<Timestamp> ts = CadenceWithGaps(1000, 500000, 9000, {});
  StepRegressionModel model = FitStepRegression(ts);
  EXPECT_DOUBLE_EQ(model.k, 1.0 / 9000.0);
  EXPECT_EQ(model.count, 1000u);
  EXPECT_EQ(model.SegmentCount(), 1u);  // single tilt, no changing points
  // Proposition 3.7 endpoints plus exact interior positions.
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_NEAR(model.Eval(ts[i]), static_cast<double>(i + 1), 1e-6)
        << "position " << i + 1;
  }
}

// The Section 3.5 running example: 1000 points at 9s cadence with one
// transmission interruption, yielding slope 1/9000 and a
// tilt-level-tilt model (Examples 3.8-3.10).
TEST(StepRegressionTest, PaperExampleTiltLevelTilt) {
  // Gap after point 242 (split across two oversized deltas, so the 3-sigma
  // rule selects P242 and P244 as the changing points, as in Example 3.10).
  std::vector<Timestamp> ts;
  Timestamp t = 1639966606000;
  for (int i = 0; i < 242; ++i) {
    ts.push_back(t);
    t += 9000;
  }
  t += 1500000;  // delta(P243) = 1509000 >> threshold
  ts.push_back(t);
  t += 2000000;  // delta(P244) = 2009000 >> threshold
  for (int i = 243; i < 1000; ++i) {
    ts.push_back(t);
    t += 9000;
  }
  ASSERT_EQ(ts.size(), 1000u);

  StepRegressionModel model = FitStepRegression(ts);
  EXPECT_DOUBLE_EQ(model.k, 1.0 / 9000.0);
  EXPECT_EQ(model.SegmentCount(), 3u);  // tilt, level, tilt
  ASSERT_EQ(model.splits.size(), 4u);
  EXPECT_EQ(model.splits.front(), ts.front());
  EXPECT_EQ(model.splits.back(), ts.back());

  // Proposition 3.7: f(FP.t) == 1 and f(LP.t) == |C|.
  EXPECT_NEAR(model.Eval(ts.front()), 1.0, 1e-9);
  EXPECT_NEAR(model.Eval(ts.back()), 1000.0, 1e-9);

  // The tilt segments track positions exactly; the level segment holds 242.
  for (size_t i = 0; i < 242; ++i) {
    EXPECT_NEAR(model.Eval(ts[i]), static_cast<double>(i + 1), 1e-6);
  }
  EXPECT_NEAR(model.Eval(ts[242]), 242.0, 1.0);  // P243 sits on the level
  for (size_t i = 243; i < 1000; ++i) {
    EXPECT_NEAR(model.Eval(ts[i]), static_cast<double>(i + 1), 1e-6);
  }
  // Mid-gap timestamps map onto the level at position ~242.
  EXPECT_NEAR(model.Eval(ts[241] + 700000), 242.0, 1.0);
}

TEST(StepRegressionTest, MultipleGaps) {
  std::vector<Timestamp> ts = CadenceWithGaps(
      2000, 0, 100, {{400, 500000}, {900, 300000}, {1500, 800000}});
  StepRegressionModel model = FitStepRegression(ts);
  EXPECT_EQ(model.SegmentCount(), 7u);  // 4 tilts, 3 levels
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_NEAR(model.Eval(ts[i]), static_cast<double>(i + 1), 2.0)
        << "position " << i + 1;
  }
}

TEST(StepRegressionTest, DegenerateInputs) {
  EXPECT_EQ(FitStepRegression(std::vector<Timestamp>{}).count, 0u);
  StepRegressionModel one = FitStepRegression(std::vector<Timestamp>{77});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.Eval(77), 1.0);
  StepRegressionModel two = FitStepRegression(std::vector<Timestamp>{1, 10});
  EXPECT_EQ(two.count, 2u);
  EXPECT_NEAR(two.Eval(1), 1.0, 1e-9);
  EXPECT_NEAR(two.Eval(10), 2.0, 1e-9);
}

TEST(StepRegressionTest, EvalClampsOutsideDomain) {
  std::vector<Timestamp> ts = CadenceWithGaps(100, 1000, 10, {});
  StepRegressionModel model = FitStepRegression(ts);
  EXPECT_DOUBLE_EQ(model.Eval(0), 1.0);
  EXPECT_DOUBLE_EQ(model.Eval(1000000), 100.0);
}

TEST(StepRegressionTest, SerializationRoundTrip) {
  std::vector<Timestamp> ts =
      CadenceWithGaps(500, 123456789, 250, {{100, 99999}, {350, 44444}});
  StepRegressionModel model = FitStepRegression(ts);
  std::string buf;
  model.SerializeTo(&buf);
  std::string_view view = buf;
  ASSERT_OK_AND_ASSIGN(StepRegressionModel decoded,
                       StepRegressionModel::Deserialize(&view));
  EXPECT_EQ(decoded, model);
  EXPECT_TRUE(view.empty());
}

TEST(StepRegressionTest, DeserializeRejectsTruncation) {
  std::vector<Timestamp> ts = CadenceWithGaps(50, 0, 10, {});
  StepRegressionModel model = FitStepRegression(ts);
  std::string buf;
  model.SerializeTo(&buf);
  std::string_view view(buf.data(), buf.size() / 2);
  EXPECT_FALSE(StepRegressionModel::Deserialize(&view).ok());
}

TEST(StepRegressionTest, ModelIsCompactComparedToData) {
  std::vector<Timestamp> ts = CadenceWithGaps(100000, 0, 1000, {{50000, 1}});
  StepRegressionModel model = FitStepRegression(ts);
  std::string buf;
  model.SerializeTo(&buf);
  // The learned index is a handful of segments regardless of chunk size.
  EXPECT_LT(buf.size(), 200u);
}

// Property sweep: random gap patterns. The model is a heuristic, but on
// cadence-with-gaps data (its design domain) the estimate must stay within
// a small band of the true position at every data point.
class StepRegressionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StepRegressionProperty, TracksPositionsOnGappyCadence) {
  Rng rng(GetParam());
  size_t n = static_cast<size_t>(rng.Uniform(100, 5000));
  int64_t delta = rng.Uniform(1, 10000);
  std::vector<std::pair<size_t, int64_t>> gaps;
  size_t pos = 0;
  int n_gaps = static_cast<int>(rng.Uniform(0, 5));
  // One gap scale per series: wildly different gap sizes in one chunk can
  // push the smaller gap under the 3-sigma threshold, which the heuristic
  // legitimately does not detect (Section 3.5.3).
  int64_t gap_len = delta * rng.Uniform(1000, 100000);
  for (int g = 0; g < n_gaps; ++g) {
    pos += static_cast<size_t>(rng.Uniform(20, n / 6 + 21));
    if (pos + 10 >= n) break;
    gaps.emplace_back(pos, gap_len);
  }
  std::vector<Timestamp> ts = CadenceWithGaps(n, rng.Uniform(0, 1 << 30),
                                              delta, gaps);
  StepRegressionModel model = FitStepRegression(ts);
  EXPECT_NEAR(model.Eval(ts.front()), 1.0, 1e-6);
  EXPECT_NEAR(model.Eval(ts.back()), static_cast<double>(n), 1e-6);
  for (size_t i = 0; i < ts.size(); ++i) {
    ASSERT_NEAR(model.Eval(ts[i]), static_cast<double>(i + 1), 2.0)
        << "seed " << GetParam() << " position " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepRegressionProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace tsviz
