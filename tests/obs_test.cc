#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsviz::obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter& counter = GetCounter("test_hammer_total", "test counter");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter.Inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(CounterTest, SameNameReturnsSameInstance) {
  Counter& a = GetCounter("test_identity_total");
  Counter& b = GetCounter("test_identity_total");
  EXPECT_EQ(&a, &b);
}

TEST(GaugeTest, SetAddAndConcurrentAdd) {
  Gauge& gauge = GetGauge("test_gauge", "test gauge");
  gauge.Set(10.0);
  gauge.Add(-2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.5);

  gauge.Reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kAddsPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kAddsPerThread);
}

TEST(HistogramTest, ConcurrentObservationsKeepCountAndSum) {
  Histogram& hist = GetHistogram("test_hist_hammer", "test histogram");
  hist.Reset();
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        hist.Observe(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hist.count(),
            static_cast<uint64_t>(kThreads) * kObsPerThread);
  // Sum of t+1 for t in [0,8) times kObsPerThread = 36 * kObsPerThread.
  EXPECT_DOUBLE_EQ(hist.sum(), 36.0 * kObsPerThread);
  EXPECT_DOUBLE_EQ(hist.max(), 8.0);
}

TEST(HistogramTest, QuantilesAreOrderedAndClampedToMax) {
  Histogram& hist = GetHistogram("test_hist_quantiles");
  hist.Reset();
  for (int i = 1; i <= 1000; ++i) hist.Observe(static_cast<double>(i));
  double p50 = hist.Quantile(0.5);
  double p90 = hist.Quantile(0.9);
  double p99 = hist.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, hist.max());
  // Log bucketing puts p50 in (256, 512]; the estimate must stay in the
  // right order of magnitude.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  // q=0 clamps to the first sample's rank: a positive min-like estimate.
  EXPECT_GT(hist.Quantile(0.0), 0.0);
  EXPECT_LE(hist.Quantile(0.0), p50);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram& hist = GetHistogram("test_hist_empty");
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(1), 2.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(10), 1024.0);
  EXPECT_TRUE(std::isinf(Histogram::BucketBound(Histogram::kNumBuckets - 1)));
}

TEST(RegistryTest, RenderPrometheusHasTypeHelpAndSamples) {
  GetCounter("test_render_total", "a test counter").Inc(3);
  GetHistogram("test_render_millis", "a test histogram").Observe(2.0);
  std::string text = MetricsRegistry::Instance().RenderPrometheus();
  EXPECT_NE(text.find("# HELP test_render_total a test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_render_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_render_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_render_millis histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_render_millis_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_render_millis_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_render_millis_count 1"), std::string::npos);

  // Every line is either a comment or `name[{labels}] value`.
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    EXPECT_LT(space + 1, line.size()) << line;
  }
}

TEST(RegistryTest, CallbackMetricReadsOnScrape) {
  static std::atomic<double> external{0.0};
  MetricsRegistry::Instance().RegisterCallback(
      "test_callback_value", "reads external state",
      [] { return external.load(); });
  external = 42.0;
  std::string text = MetricsRegistry::Instance().RenderPrometheus();
  EXPECT_NE(text.find("test_callback_value 42"), std::string::npos);
}

TEST(RegistryTest, LogCountersAreRegistered) {
  std::string text = MetricsRegistry::Instance().RenderPrometheus();
  EXPECT_NE(text.find("log_warnings_total"), std::string::npos);
  EXPECT_NE(text.find("log_errors_total"), std::string::npos);
}

TEST(RegistryTest, RenderJsonIsWellFormedEnough) {
  GetCounter("test_json_total").Inc();
  std::string json = MetricsRegistry::Instance().RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_total\""), std::string::npos);
}

TEST(RegistryTest, ResetForTestKeepsReferencesValid) {
  Counter& counter = GetCounter("test_reset_total");
  counter.Inc(7);
  MetricsRegistry::Instance().ResetForTest();
  EXPECT_EQ(counter.value(), 0u);
  counter.Inc();
  EXPECT_EQ(GetCounter("test_reset_total").value(), 1u);
}

TEST(TraceTest, SpansNestAndMergeByName) {
  Trace trace("query");
  {
    TraceSpan outer(&trace, "phase_a");
    for (int i = 0; i < 3; ++i) {
      TraceSpan inner(&trace, "phase_b");
    }
    TraceSpan other(&trace, "phase_c");
  }
  const TraceNode& root = trace.root();
  ASSERT_EQ(root.children.size(), 1u);
  const TraceNode& a = *root.children[0];
  EXPECT_EQ(a.name, "phase_a");
  EXPECT_EQ(a.calls, 1u);
  ASSERT_EQ(a.children.size(), 2u);
  const TraceNode& b = *a.children[0];
  EXPECT_EQ(b.name, "phase_b");
  EXPECT_EQ(b.calls, 3u);  // three entries merged into one node
  EXPECT_EQ(a.children[1]->name, "phase_c");

  // Time is monotone: a nested span can never exceed its parent.
  EXPECT_GE(a.millis, b.millis + a.children[1]->millis);
  EXPECT_GE(b.millis, 0.0);

  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("phase_a"), std::string::npos);
  EXPECT_NE(rendered.find("phase_b"), std::string::npos);
  EXPECT_NE(rendered.find("x3"), std::string::npos);
}

TEST(TraceTest, NullTraceSpansAreNoOps) {
  TraceSpan a(nullptr, "ignored");
  TraceSpan b(nullptr, "also_ignored");
  SUCCEED();
}

TEST(TraceTest, SiblingSpansReuseNodeAcrossScopes) {
  Trace trace("query");
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(&trace, "repeat");
  }
  ASSERT_EQ(trace.root().children.size(), 1u);
  EXPECT_EQ(trace.root().children[0]->calls, 5u);
}

}  // namespace
}  // namespace tsviz::obs
