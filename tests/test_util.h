#ifndef TSVIZ_TESTS_TEST_UTIL_H_
#define TSVIZ_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "read/lazy_chunk.h"
#include "storage/store.h"

namespace tsviz {

#define ASSERT_OK(expr)                                        \
  do {                                                         \
    const auto& _assert_ok = (expr);                           \
    ASSERT_TRUE(_assert_ok.ok()) << _assert_ok.ToString();     \
  } while (false)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    const auto& _expect_ok = (expr);                           \
    EXPECT_TRUE(_expect_ok.ok()) << _expect_ok.ToString();     \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  ASSERT_OK_AND_ASSIGN_IMPL_(                                  \
      TSVIZ_STATUS_CONCAT_(_assign_result_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)             \
  auto tmp = (expr);                                           \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();            \
  lhs = std::move(tmp).value()

// Self-deleting temporary directory.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = std::filesystem::temp_directory_path() /
                       "tsviz_test_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp/tsviz_test_fallback";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Regular series: n points, cadence `delta`, values v(i) = value_fn(i).
template <typename ValueFn>
std::vector<Point> MakeSeries(size_t n, Timestamp start, int64_t delta,
                              ValueFn value_fn) {
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back(Point{start + static_cast<Timestamp>(i) * delta,
                           static_cast<Value>(value_fn(i))});
  }
  return points;
}

inline std::vector<Point> MakeLinearSeries(size_t n, Timestamp start = 0,
                                           int64_t delta = 10) {
  return MakeSeries(n, start, delta, [](size_t i) { return double(i); });
}

// Reads every point of every chunk in the store (pre-merge contents),
// returning (version, points) pairs; used to drive the reference merge.
inline std::vector<std::pair<Version, std::vector<Point>>> DumpChunks(
    const TsStore& store) {
  std::vector<std::pair<Version, std::vector<Point>>> out;
  for (const ChunkHandle& handle : store.chunks()) {
    LazyChunk chunk(handle, nullptr);
    auto points = chunk.ReadAllPoints();
    EXPECT_TRUE(points.ok()) << points.status().ToString();
    out.emplace_back(handle.meta->version, std::move(points).value());
  }
  return out;
}

inline std::vector<std::pair<Version, TimeRange>> DumpDeletes(
    const TsStore& store) {
  std::vector<std::pair<Version, TimeRange>> out;
  for (const DeleteRecord& del : store.deletes()) {
    out.emplace_back(del.version, del.range);
  }
  return out;
}

}  // namespace tsviz

#endif  // TSVIZ_TESTS_TEST_UTIL_H_
