#include "index/chunk_searcher.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "encoding/page.h"
#include "index/binary_search_index.h"
#include "index/page_provider.h"
#include "test_util.h"

namespace tsviz {
namespace {

// In-memory provider that also counts page materializations.
class FakeProvider : public PageProvider {
 public:
  FakeProvider(std::vector<Point> points, size_t page_size) {
    for (size_t begin = 0; begin < points.size(); begin += page_size) {
      size_t end = std::min(points.size(), begin + page_size);
      std::vector<Point> page(points.begin() + begin, points.begin() + end);
      PageInfo info;
      info.count = static_cast<uint32_t>(page.size());
      info.min_t = page.front().t;
      info.max_t = page.back().t;
      pages_meta_.push_back(info);
      pages_data_.push_back(std::move(page));
    }
    total_ = points.size();
  }

  const std::vector<PageInfo>& pages() const override { return pages_meta_; }

  Result<const std::vector<Point>*> GetPage(size_t i) override {
    if (i >= pages_data_.size()) return Status::OutOfRange("bad page");
    ++decodes_;
    return &pages_data_[i];
  }

  uint64_t num_points() const override { return total_; }
  uint64_t decodes() const { return decodes_; }

 private:
  std::vector<PageInfo> pages_meta_;
  std::vector<std::vector<Point>> pages_data_;
  uint64_t total_ = 0;
  uint64_t decodes_ = 0;
};

std::vector<Point> GappyPoints(size_t n) {
  std::vector<Point> points;
  Timestamp t = 1000;
  for (size_t i = 0; i < n; ++i) {
    points.push_back(Point{t, static_cast<double>(i)});
    t += 10;
    if (i == n / 3) t += 100000;  // one big transmission gap
    if (i % 97 == 0) t += 5;     // mild jitter
  }
  return points;
}

class SearcherStrategyTest : public ::testing::TestWithParam<LocateStrategy> {
 protected:
  void Init(std::vector<Point> points, size_t page_size) {
    points_ = std::move(points);
    provider_ = std::make_unique<FakeProvider>(points_, page_size);
    model_ = FitStepRegression(points_);
    searcher_ = std::make_unique<ChunkSearcher>(provider_.get(), &model_,
                                                GetParam(), &stats_);
  }

  std::vector<Point> points_;
  std::unique_ptr<FakeProvider> provider_;
  StepRegressionModel model_;
  QueryStats stats_;
  std::unique_ptr<ChunkSearcher> searcher_;
};

TEST_P(SearcherStrategyTest, FindExactHitsEveryStoredTimestamp) {
  Init(GappyPoints(1200), 100);
  for (size_t i = 0; i < points_.size(); i += 7) {
    ASSERT_OK_AND_ASSIGN(std::optional<PointPos> hit,
                         searcher_->FindExact(points_[i].t));
    ASSERT_TRUE(hit.has_value()) << "t=" << points_[i].t;
    EXPECT_EQ(hit->pos, i);
    EXPECT_EQ(hit->point, points_[i]);
  }
}

TEST_P(SearcherStrategyTest, FindExactMissesAbsentTimestamps) {
  Init(GappyPoints(500), 64);
  // Between two stored timestamps.
  ASSERT_OK_AND_ASSIGN(std::optional<PointPos> miss,
                       searcher_->FindExact(points_[10].t + 1));
  EXPECT_FALSE(miss.has_value());
  // Before the chunk and after the chunk.
  ASSERT_OK_AND_ASSIGN(miss, searcher_->FindExact(points_.front().t - 1));
  EXPECT_FALSE(miss.has_value());
  ASSERT_OK_AND_ASSIGN(miss, searcher_->FindExact(points_.back().t + 1));
  EXPECT_FALSE(miss.has_value());
  // Deep inside the transmission gap.
  ASSERT_OK_AND_ASSIGN(miss,
                       searcher_->FindExact(points_[500 / 3].t + 50000));
  EXPECT_FALSE(miss.has_value());
}

TEST_P(SearcherStrategyTest, FirstAtOrAfterMatchesNaive) {
  Init(GappyPoints(800), 50);
  Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    Timestamp t = rng.Uniform(points_.front().t - 100,
                              points_.back().t + 100);
    ASSERT_OK_AND_ASSIGN(std::optional<PointPos> hit,
                         searcher_->FirstAtOrAfter(t));
    // Naive scan.
    const Point* expected = nullptr;
    size_t expected_pos = 0;
    for (size_t i = 0; i < points_.size(); ++i) {
      if (points_[i].t >= t) {
        expected = &points_[i];
        expected_pos = i;
        break;
      }
    }
    if (expected == nullptr) {
      EXPECT_FALSE(hit.has_value()) << "t=" << t;
    } else {
      ASSERT_TRUE(hit.has_value()) << "t=" << t;
      EXPECT_EQ(hit->pos, expected_pos);
      EXPECT_EQ(hit->point, *expected);
    }
  }
}

TEST_P(SearcherStrategyTest, LastAtOrBeforeMatchesNaive) {
  Init(GappyPoints(800), 50);
  Rng rng(14);
  for (int trial = 0; trial < 500; ++trial) {
    Timestamp t = rng.Uniform(points_.front().t - 100,
                              points_.back().t + 100);
    ASSERT_OK_AND_ASSIGN(std::optional<PointPos> hit,
                         searcher_->LastAtOrBefore(t));
    const Point* expected = nullptr;
    size_t expected_pos = 0;
    for (size_t i = points_.size(); i > 0; --i) {
      if (points_[i - 1].t <= t) {
        expected = &points_[i - 1];
        expected_pos = i - 1;
        break;
      }
    }
    if (expected == nullptr) {
      EXPECT_FALSE(hit.has_value()) << "t=" << t;
    } else {
      ASSERT_TRUE(hit.has_value()) << "t=" << t;
      EXPECT_EQ(hit->pos, expected_pos);
      EXPECT_EQ(hit->point, *expected);
    }
  }
}

TEST_P(SearcherStrategyTest, PointAtEveryPosition) {
  Init(GappyPoints(300), 37);
  for (size_t i = 0; i < points_.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(Point p, searcher_->PointAt(i));
    EXPECT_EQ(p, points_[i]);
  }
  EXPECT_EQ(searcher_->PointAt(points_.size()).status().code(),
            StatusCode::kOutOfRange);
}

TEST_P(SearcherStrategyTest, LookupTouchesOnePage) {
  Init(GappyPoints(10000), 100);
  ASSERT_OK(searcher_->FindExact(points_[5550].t).status());
  // Exactly one page materialized for a single probe.
  EXPECT_EQ(provider_->decodes(), 1u);
  EXPECT_GE(stats_.index_lookups, 1u);
}

TEST_P(SearcherStrategyTest, SinglePageChunk) {
  Init(MakeLinearSeries(10, 100, 10), 100);
  ASSERT_OK_AND_ASSIGN(std::optional<PointPos> hit,
                       searcher_->FindExact(150));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pos, 5u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, SearcherStrategyTest,
                         ::testing::Values(LocateStrategy::kStepRegression,
                                           LocateStrategy::kBinarySearch));

TEST(BinarySearchLocatorTest, ForwardAndBackwardBounds) {
  FakeProvider provider(MakeLinearSeries(100, 0, 10), 10);
  const auto& pages = provider.pages();
  // t before everything -> page 0 forward, none backward.
  EXPECT_EQ(LocatePageBinary(pages, -5), 0u);
  EXPECT_EQ(LocatePageBinaryBackward(pages, -5), pages.size());
  // t past everything -> none forward, last page backward.
  EXPECT_EQ(LocatePageBinary(pages, 10000), pages.size());
  EXPECT_EQ(LocatePageBinaryBackward(pages, 10000), pages.size() - 1);
  // t inside page 3 (timestamps 300..390).
  EXPECT_EQ(LocatePageBinary(pages, 305), 3u);
  EXPECT_EQ(LocatePageBinaryBackward(pages, 305), 3u);
}

}  // namespace
}  // namespace tsviz
