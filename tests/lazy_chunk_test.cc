#include "read/lazy_chunk.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"

namespace tsviz {
namespace {

class LazyChunkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StoreConfig config;
    config.data_dir = dir_.path();
    config.points_per_chunk = 1000;
    config.memtable_flush_threshold = 1000;
    config.encoding.page_size_points = 100;
    auto store = TsStore::Open(config);
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
    points_ = MakeLinearSeries(1000, 0, 10);
    ASSERT_OK(store_->WriteAll(points_));
    ASSERT_OK(store_->Flush());
    ASSERT_EQ(store_->chunks().size(), 1u);
  }

  TempDir dir_;
  std::unique_ptr<TsStore> store_;
  std::vector<Point> points_;
};

TEST_F(LazyChunkTest, ConstructionTouchesNoData) {
  QueryStats stats;
  LazyChunk chunk(store_->chunks()[0], &stats);
  EXPECT_EQ(stats.bytes_read, 0u);
  EXPECT_EQ(stats.pages_decoded, 0u);
  EXPECT_EQ(stats.chunks_loaded, 0u);
  EXPECT_FALSE(chunk.loaded());
  EXPECT_EQ(chunk.num_points(), 1000u);
  EXPECT_EQ(chunk.pages().size(), 10u);
}

TEST_F(LazyChunkTest, SinglePageReadCostsOnePage) {
  QueryStats stats;
  LazyChunk chunk(store_->chunks()[0], &stats);
  ASSERT_OK_AND_ASSIGN(const std::vector<Point>* page, chunk.GetPage(3));
  ASSERT_EQ(page->size(), 100u);
  EXPECT_EQ(page->front(), points_[300]);
  EXPECT_EQ(stats.pages_decoded, 1u);
  EXPECT_EQ(stats.chunks_loaded, 1u);
  EXPECT_EQ(stats.bytes_read, chunk.pages()[3].length);
  // Far less I/O than the whole chunk.
  EXPECT_LT(stats.bytes_read, store_->chunks()[0].meta->data_length);
}

TEST_F(LazyChunkTest, PagesAreCached) {
  QueryStats stats;
  LazyChunk chunk(store_->chunks()[0], &stats);
  ASSERT_OK_AND_ASSIGN(const std::vector<Point>* first, chunk.GetPage(5));
  ASSERT_OK_AND_ASSIGN(const std::vector<Point>* second, chunk.GetPage(5));
  EXPECT_EQ(first, second);  // same cached vector
  EXPECT_EQ(stats.pages_decoded, 1u);
  EXPECT_EQ(stats.chunks_loaded, 1u);
}

TEST_F(LazyChunkTest, ReadAllPointsRoundTrips) {
  QueryStats stats;
  LazyChunk chunk(store_->chunks()[0], &stats);
  ASSERT_OK_AND_ASSIGN(std::vector<Point> all, chunk.ReadAllPoints());
  EXPECT_EQ(all, points_);
  EXPECT_EQ(stats.pages_decoded, 10u);
  EXPECT_EQ(stats.chunks_loaded, 1u);  // counted once despite 10 pages
  EXPECT_EQ(stats.bytes_read, store_->chunks()[0].meta->data_length);
}

TEST_F(LazyChunkTest, OutOfRangePageRejected) {
  LazyChunk chunk(store_->chunks()[0], nullptr);
  EXPECT_EQ(chunk.GetPage(10).status().code(), StatusCode::kOutOfRange);
}

TEST_F(LazyChunkTest, NullStatsIsSupported) {
  LazyChunk chunk(store_->chunks()[0], nullptr);
  ASSERT_OK_AND_ASSIGN(std::vector<Point> all, chunk.ReadAllPoints());
  EXPECT_EQ(all.size(), 1000u);
}

}  // namespace
}  // namespace tsviz
