#include "storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "read/series_reader.h"
#include "test_util.h"

namespace tsviz {
namespace {

TEST(WalTest, RoundTripPutsAndDeletes) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<WalWriter> writer,
                         WalWriter::Open(path));
    ASSERT_OK(writer->AppendPut(Point{10, 1.5}));
    ASSERT_OK(writer->AppendDelete(TimeRange(5, 15)));
    ASSERT_OK(writer->AppendPut(Point{-3, 2.25}));
  }
  bool truncated = true;
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> records,
                       ReadWal(path, &truncated));
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, WalRecord::Type::kPut);
  EXPECT_EQ(records[0].point, (Point{10, 1.5}));
  EXPECT_EQ(records[1].type, WalRecord::Type::kDelete);
  EXPECT_EQ(records[1].range, TimeRange(5, 15));
  EXPECT_EQ(records[2].point, (Point{-3, 2.25}));
}

TEST(WalTest, MissingFileIsEmpty) {
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> records,
                       ReadWal("/nonexistent/wal.log"));
  EXPECT_TRUE(records.empty());
}

TEST(WalTest, TornTailIsTolerated) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<WalWriter> writer,
                         WalWriter::Open(path));
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK(writer->AppendPut(Point{i, i * 1.0}));
    }
  }
  // Chop a few bytes off the last record, simulating a crash mid-append.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);

  bool truncated = false;
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> records,
                       ReadWal(path, &truncated));
  EXPECT_TRUE(truncated);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.back().point.t, 3);
}

TEST(WalTest, CorruptMiddleStopsReplay) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<WalWriter> writer,
                         WalWriter::Open(path));
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK(writer->AppendPut(Point{i, i * 1.0}));
    }
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);  // inside the second record
    char c = '\xff';
    f.write(&c, 1);
  }
  bool truncated = false;
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> records,
                       ReadWal(path, &truncated));
  EXPECT_TRUE(truncated);
  EXPECT_EQ(records.size(), 1u);
}

TEST(WalTest, RotateToMovesSegmentAndKeepsAppending) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  std::string old_path = dir.path() + "/wal.log.old";
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<WalWriter> writer,
                       WalWriter::Open(path));
  ASSERT_OK(writer->AppendPut(Point{1, 1.0}));
  ASSERT_OK(writer->AppendPut(Point{2, 2.0}));
  ASSERT_OK(writer->RotateTo(old_path));
  ASSERT_OK(writer->AppendPut(Point{3, 3.0}));
  writer.reset();
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> old_records, ReadWal(old_path));
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> records, ReadWal(path));
  ASSERT_EQ(old_records.size(), 2u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].point.t, 3);
}

// Regression: a failed rotation must leave the live segment intact and the
// writer usable — never a half-rotated state where acknowledged records sit
// at old_path while the writer appends to a fresh log it never created.
TEST(WalTest, FailedRotateLeavesWriterUsable) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  // Rename into a directory that does not exist must fail.
  std::string bad_old_path = dir.path() + "/missing_dir/wal.log.old";
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<WalWriter> writer,
                       WalWriter::Open(path));
  ASSERT_OK(writer->AppendPut(Point{1, 1.0}));
  ASSERT_OK(writer->AppendPut(Point{2, 2.0}));
  EXPECT_FALSE(writer->RotateTo(bad_old_path).ok());
  // The writer keeps accepting appends into the original segment.
  ASSERT_OK(writer->AppendPut(Point{3, 3.0}));
  writer.reset();
  EXPECT_FALSE(std::filesystem::exists(bad_old_path));
  bool truncated = true;
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> records,
                       ReadWal(path, &truncated));
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].point.t, 3);
}

TEST(WalTest, ResetDiscardsContents) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<WalWriter> writer,
                       WalWriter::Open(path));
  ASSERT_OK(writer->AppendPut(Point{1, 1.0}));
  ASSERT_OK(writer->Reset());
  ASSERT_OK(writer->AppendPut(Point{2, 2.0}));
  writer.reset();
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> records, ReadWal(path));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].point.t, 2);
}

// --- store-level WAL behaviour -------------------------------------------

StoreConfig WalConfig(const std::string& dir, bool enable_wal = true) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 100;
  config.memtable_flush_threshold = 100;
  config.enable_wal = enable_wal;
  return config;
}

TEST(StoreWalTest, UnflushedWritesSurviveReopen) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(WalConfig(dir.path())));
    for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i, i * 2.0));
    EXPECT_EQ(store->memtable_size(), 50u);
    // No Flush(): the store is dropped with a dirty memtable.
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(WalConfig(dir.path())));
  EXPECT_EQ(store->memtable_size(), 50u);
  ASSERT_OK(store->Flush());
  ASSERT_OK_AND_ASSIGN(std::vector<Point> merged,
                       ReadMergedSeries(*store, TimeRange(0, 100), nullptr));
  ASSERT_EQ(merged.size(), 50u);
  EXPECT_EQ(merged[10], (Point{10, 20.0}));
}

TEST(StoreWalTest, DeletePurgesMemtableAndSurvivesReopen) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(WalConfig(dir.path())));
    for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i, 1.0));
    ASSERT_OK(store->DeleteRange(TimeRange(10, 19)));
    EXPECT_EQ(store->memtable_size(), 40u);  // purged immediately
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(WalConfig(dir.path())));
  EXPECT_EQ(store->memtable_size(), 40u);
  ASSERT_OK(store->Flush());
  ASSERT_OK_AND_ASSIGN(std::vector<Point> merged,
                       ReadMergedSeries(*store, TimeRange(0, 100), nullptr));
  EXPECT_EQ(merged.size(), 40u);
  for (const Point& p : merged) {
    EXPECT_FALSE(p.t >= 10 && p.t <= 19) << "t=" << p.t;
  }
}

TEST(StoreWalTest, WalResetsAfterFlush) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(WalConfig(dir.path())));
    for (int i = 0; i < 100; ++i) ASSERT_OK(store->Write(i, 0.0));
    // Auto-flush triggered at 100; the WAL must be empty again.
  }
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> records,
                       ReadWal(dir.path() + "/wal.log"));
  EXPECT_TRUE(records.empty());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(WalConfig(dir.path())));
  EXPECT_EQ(store->memtable_size(), 0u);
  EXPECT_EQ(store->TotalStoredPoints(), 100u);
}

TEST(StoreWalTest, TornWalTailRecoversPrefix) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(WalConfig(dir.path())));
    for (int i = 0; i < 30; ++i) ASSERT_OK(store->Write(i, 1.0));
  }
  std::string wal_path = dir.path() + "/wal.log";
  auto size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, size - 7);
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(WalConfig(dir.path())));
    EXPECT_EQ(store->memtable_size(), 29u);
    // The rewritten log must be fully replayable on the next open.
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(WalConfig(dir.path())));
  EXPECT_EQ(store->memtable_size(), 29u);
}

// A crash mid-AppendPuts: the batch's single write(2) stops partway through
// a record. Recovery replays a PREFIX OF WHOLE RECORDS — some of the batch
// may survive, but never a partial point, and the surviving batch records
// are exactly its leading run.
TEST(StoreWalTest, TornBatchAppendRecoversWholeRecordPrefix) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(WalConfig(dir.path())));
    for (int i = 0; i < 10; ++i) ASSERT_OK(store->Write(i, i * 2.0));
    std::vector<Point> batch;
    for (int64_t t = 100; t < 120; ++t) {
      batch.push_back({t, static_cast<double>(t) * 3.0});
    }
    ASSERT_OK(store->WriteBatch(batch));
    // No Flush(): the store dies with the batch only in the WAL.
  }
  // Chop into the middle of a batch record (each put record is 25 bytes;
  // 37 removes the last record and tears the one before it).
  const std::string path = dir.path() + "/wal.log";
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 37);

  bool truncated = false;
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> records,
                       ReadWal(path, &truncated));
  EXPECT_TRUE(truncated);
  ASSERT_EQ(records.size(), 28u);  // 10 singles + 18 whole batch records
  for (size_t i = 10; i < records.size(); ++i) {
    // The surviving batch records are its exact leading run, bit-intact.
    const auto t = static_cast<Timestamp>(100 + (i - 10));
    EXPECT_EQ(records[i].point, (Point{t, static_cast<double>(t) * 3.0}))
        << "record " << i;
  }

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(WalConfig(dir.path())));
  EXPECT_EQ(store->memtable_size(), 28u);
  ASSERT_OK(store->Flush());
  ASSERT_OK_AND_ASSIGN(std::vector<Point> merged,
                       ReadMergedSeries(*store, TimeRange(0, 200), nullptr));
  ASSERT_EQ(merged.size(), 28u);
  EXPECT_EQ(merged.back(), (Point{117, 351.0}));
}

// A torn batch write the process survives: the injected fault tears the
// write(2) mid-buffer, AppendPuts reports the error after truncating the
// torn bytes back out, and the memtable never sees the batch — the
// all-or-nothing contract holds in-process, and a reopen agrees.
TEST(StoreWalTest, TornBatchAppendFailsAtomicallyInProcess) {
  TempDir dir;
  FaultConfig config;
  config.start_after = 5;      // let the warm-up singles through
  config.torn_append_every = 1;
  SetFaultConfig(config);
  {
    auto store_or = TsStore::Open(WalConfig(dir.path()));
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    std::unique_ptr<TsStore>& store = store_or.value();
    for (int i = 0; i < 5; ++i) ASSERT_OK(store->Write(i, 1.0));
    std::vector<Point> batch;
    for (int64_t t = 100; t < 120; ++t) batch.push_back({t, 9.0});
    const Status torn = store->WriteBatch(batch);
    EXPECT_FALSE(torn.ok());
    EXPECT_TRUE(torn.retryable());
    EXPECT_EQ(store->memtable_size(), 5u);  // batch never half-applied
  }
  SetFaultConfig(FaultConfig{});
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(WalConfig(dir.path())));
  EXPECT_EQ(store->memtable_size(), 5u);
}

TEST(StoreWalTest, DisabledWalLosesMemtableQuietly) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<TsStore> store,
        TsStore::Open(WalConfig(dir.path(), /*enable_wal=*/false)));
    for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i, 1.0));
  }
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<TsStore> store,
      TsStore::Open(WalConfig(dir.path(), /*enable_wal=*/false)));
  EXPECT_EQ(store->memtable_size(), 0u);
}

}  // namespace
}  // namespace tsviz
