#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "storage/file_format.h"
#include "storage/file_reader.h"
#include "storage/file_writer.h"
#include "test_util.h"

namespace tsviz {
namespace {

ChunkEncodingOptions TestOptions() {
  ChunkEncodingOptions options;
  options.page_size_points = 50;
  return options;
}

class FileTest : public ::testing::Test {
 protected:
  std::string FilePath(const std::string& name) {
    return dir_.path() + "/" + name;
  }

  TempDir dir_;
};

TEST_F(FileTest, WriteThenReadBack) {
  std::string path = FilePath("a.tsdat");
  std::vector<Point> c1 = MakeLinearSeries(120, 0, 10);
  std::vector<Point> c2 = MakeLinearSeries(80, 5000, 10);
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<FileWriter> writer,
                         FileWriter::Create(path));
    ASSERT_OK(writer->AppendChunk(c1, 1, TestOptions(), nullptr));
    ASSERT_OK(writer->AppendChunk(c2, 2, TestOptions(), nullptr));
    EXPECT_EQ(writer->num_chunks(), 2u);
    ASSERT_OK(writer->Finish());
  }

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<FileReader> reader,
                       FileReader::Open(path));
  ASSERT_EQ(reader->chunks().size(), 2u);
  EXPECT_EQ(reader->chunks()[0].version, 1u);
  EXPECT_EQ(reader->chunks()[1].version, 2u);
  EXPECT_EQ(reader->chunks()[0].count, 120u);
  EXPECT_EQ(reader->chunks()[1].count, 80u);

  // Chunk blobs decode back to the original points via the directory.
  for (size_t ci = 0; ci < 2; ++ci) {
    const ChunkMetadata& meta = reader->chunks()[ci];
    std::vector<Point> decoded;
    for (const PageInfo& page : meta.pages) {
      ASSERT_OK_AND_ASSIGN(
          std::string raw,
          reader->ReadRange(meta.data_offset + page.offset, page.length));
      ASSERT_OK(DecodePage(raw, &decoded));
    }
    EXPECT_EQ(decoded, ci == 0 ? c1 : c2);
  }
}

TEST_F(FileTest, FinishTwiceRejected) {
  std::string path = FilePath("b.tsdat");
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<FileWriter> writer,
                       FileWriter::Create(path));
  ASSERT_OK(writer->AppendChunk(MakeLinearSeries(10), 1, TestOptions(),
                                nullptr));
  ASSERT_OK(writer->Finish());
  EXPECT_EQ(writer->Finish().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(writer
                ->AppendChunk(MakeLinearSeries(10), 2, TestOptions(),
                              nullptr)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FileTest, EmptyFileIsValidWithZeroChunks) {
  std::string path = FilePath("empty.tsdat");
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<FileWriter> writer,
                         FileWriter::Create(path));
    ASSERT_OK(writer->Finish());
  }
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<FileReader> reader,
                       FileReader::Open(path));
  EXPECT_TRUE(reader->chunks().empty());
}

TEST_F(FileTest, MissingFileIsIoError) {
  EXPECT_EQ(FileReader::Open(FilePath("nonexistent")).status().code(),
            StatusCode::kIoError);
}

TEST_F(FileTest, TruncatedFileIsCorruption) {
  std::string path = FilePath("trunc.tsdat");
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<FileWriter> writer,
                         FileWriter::Create(path));
    ASSERT_OK(writer->AppendChunk(MakeLinearSeries(200), 1, TestOptions(),
                                  nullptr));
    ASSERT_OK(writer->Finish());
  }
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  EXPECT_FALSE(FileReader::Open(path).ok());
}

TEST_F(FileTest, CorruptedFooterDetected) {
  std::string path = FilePath("corrupt.tsdat");
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<FileWriter> writer,
                         FileWriter::Create(path));
    ASSERT_OK(writer->AppendChunk(MakeLinearSeries(200), 1, TestOptions(),
                                  nullptr));
    ASSERT_OK(writer->Finish());
  }
  // Flip a byte in the footer region (just before the trailer).
  auto size = std::filesystem::file_size(path);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(static_cast<std::streamoff>(size - kFileTrailerSize - 3));
  char c;
  f.read(&c, 1);
  f.seekp(static_cast<std::streamoff>(size - kFileTrailerSize - 3));
  c = static_cast<char>(c ^ 0x7f);
  f.write(&c, 1);
  f.close();
  EXPECT_EQ(FileReader::Open(path).status().code(), StatusCode::kCorruption);
}

TEST_F(FileTest, GarbageFileRejected) {
  std::string path = FilePath("garbage.tsdat");
  {
    std::ofstream out(path, std::ios::binary);
    std::string junk(500, 'z');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  EXPECT_FALSE(FileReader::Open(path).ok());
}

TEST_F(FileTest, ReadRangePastEofIsOutOfRange) {
  std::string path = FilePath("c.tsdat");
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<FileWriter> writer,
                         FileWriter::Create(path));
    ASSERT_OK(writer->Finish());
  }
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<FileReader> reader,
                       FileReader::Open(path));
  EXPECT_EQ(reader->ReadRange(reader->file_size(), 1).status().code(),
            StatusCode::kOutOfRange);
}

TEST(FileTailTest, RoundTrip) {
  std::vector<ChunkMetadata> chunks(3);
  chunks[0].version = 1;
  chunks[0].count = 10;
  chunks[1].version = 2;
  chunks[1].count = 20;
  chunks[2].version = 3;
  chunks[2].count = 30;
  std::string tail = SerializeFileTail(chunks);
  ASSERT_OK_AND_ASSIGN(std::vector<ChunkMetadata> decoded,
                       ParseFileTail(tail, /*file_size=*/1 << 20));
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[1].count, 20u);
}

TEST(FileTailTest, RejectsChunkPastEof) {
  std::vector<ChunkMetadata> chunks(1);
  chunks[0].data_offset = 100;
  chunks[0].data_length = 100;
  std::string tail = SerializeFileTail(chunks);
  EXPECT_EQ(ParseFileTail(tail, /*file_size=*/150).status().code(),
            StatusCode::kCorruption);
}

TEST(ModsRecordTest, RoundTrip) {
  DeleteRecord del{TimeRange(-100, 500), 42};
  std::string buf;
  SerializeDeleteRecord(del, &buf);
  EXPECT_EQ(buf.size(), kModsRecordSize);
  std::string_view view = buf;
  ASSERT_OK_AND_ASSIGN(DeleteRecord decoded, ParseDeleteRecord(&view));
  EXPECT_EQ(decoded, del);
}

}  // namespace
}  // namespace tsviz
