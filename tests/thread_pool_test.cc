#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace tsviz {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  std::mutex mutex;
  std::condition_variable cv;
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return counter.load() == kTasks; }));
  EXPECT_EQ(pool.tasks_submitted(), static_cast<uint64_t>(kTasks));
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    // One thread, so most tasks are still queued when the pool dies; they
    // must all run anyway (submitted work may carry completion latches).
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  {
    ThreadPool inner(-3);
    inner.Submit([&ran] { ran.store(true); });
  }
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DefaultExecutorThreadsIsClamped) {
  int n = DefaultExecutorThreads();
  EXPECT_GE(n, 2);
  EXPECT_LE(n, 32);
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  constexpr int kPerThread = 200;
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kPerThread; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (counter.load() < 4 * kPerThread &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(counter.load(), 4 * kPerThread);
}

}  // namespace
}  // namespace tsviz
