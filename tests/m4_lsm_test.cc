#include "m4/m4_lsm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "m4/m4_udf.h"
#include "m4/reference.h"
#include "test_util.h"
#include "workload/ooo.h"

namespace tsviz {
namespace {

StoreConfig TestConfig(const std::string& dir, size_t chunk = 40,
                       size_t page = 16) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = chunk;
  config.memtable_flush_threshold = chunk;
  config.encoding.page_size_points = page;
  return config;
}

// Compares M4-LSM against the UDF baseline and the oracle, and checks
// result invariants.
void ExpectAllAgree(const TsStore& store, const M4Query& query,
                    uint64_t seed = 0) {
  QueryStats lsm_stats;
  ASSERT_OK_AND_ASSIGN(M4Result lsm, RunM4Lsm(store, query, &lsm_stats));
  ASSERT_OK_AND_ASSIGN(M4Result udf, RunM4Udf(store, query, nullptr));
  M4Result oracle = ReferenceM4(
      ReferenceMerge(DumpChunks(store), DumpDeletes(store)), query);
  EXPECT_TRUE(ResultsEquivalent(udf, oracle))
      << "seed " << seed << " UDF vs oracle: " << FirstMismatch(udf, oracle);
  EXPECT_TRUE(ResultsEquivalent(lsm, oracle))
      << "seed " << seed << " LSM vs oracle: " << FirstMismatch(lsm, oracle);
  EXPECT_EQ(ValidateResultInvariants(lsm), "") << "seed " << seed;
}

TEST(M4LsmTest, SingleChunkNoDeletes) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  std::vector<Point> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back(Point{i * 10, std::sin(i * 0.7) * 10});
  }
  ASSERT_OK(store->WriteAll(points));
  ASSERT_OK(store->Flush());
  ExpectAllAgree(*store, M4Query{0, 400, 4});
}

TEST(M4LsmTest, DisjointChunksAreServedFromMetadataOnly) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  // 10 disjoint chunks of 40 points; spans aligned to whole chunks.
  ASSERT_OK(store->WriteAll(MakeSeries(400, 0, 10, [](size_t i) {
    return std::cos(static_cast<double>(i));
  })));
  ASSERT_OK(store->Flush());
  ASSERT_EQ(store->chunks().size(), 10u);

  QueryStats stats;
  // w=2: each span covers 5 whole chunks; chunk boundaries align with span
  // boundaries (2000 = 5 * 400).
  M4Query query{0, 4000, 2};
  ASSERT_OK_AND_ASSIGN(M4Result result, RunM4Lsm(*store, query, &stats));
  // Merge-free: nothing is read from disk at all.
  EXPECT_EQ(stats.chunks_loaded, 0u);
  EXPECT_EQ(stats.bytes_read, 0u);
  EXPECT_EQ(stats.pages_decoded, 0u);
  ASSERT_OK_AND_ASSIGN(M4Result udf, RunM4Udf(*store, query, nullptr));
  EXPECT_TRUE(ResultsEquivalent(result, udf)) << FirstMismatch(result, udf);
}

TEST(M4LsmTest, ChunksSplitBySpansArePartiallyLoaded) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeSeries(400, 0, 10, [](size_t i) {
    return std::sin(static_cast<double>(i) * 0.3);
  })));
  ASSERT_OK(store->Flush());

  QueryStats stats;
  // w=7 does not align with the 10 chunk boundaries: split chunks load.
  ASSERT_OK(RunM4Lsm(*store, M4Query{0, 4000, 7}, &stats).status());
  EXPECT_GT(stats.chunks_loaded, 0u);
  EXPECT_LT(stats.chunks_loaded, 10u);  // but never all of them
  ExpectAllAgree(*store, M4Query{0, 4000, 7});
}

// Figure 7(a): the FP candidate from chunk metadata is killed by a later
// delete; the lazy interval update lets another chunk win without loading
// the deleted-prefix chunks.
TEST(M4LsmTest, PaperExampleFpUnderDelete) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path(), 4)));
  // C1 (v1): points at t = 0, 10, 20, 30.
  ASSERT_OK(store->WriteAll({{0, 1}, {10, 2}, {20, 3}, {30, 4}}));
  // C2 (v2): points at t = 5, 15, 25, 35 (earliest live candidate region).
  ASSERT_OK(store->WriteAll({{5, 9}, {15, 8}, {25, 7}, {35, 6}}));
  // D3: deletes [0, 17], covering both chunks' first points.
  ASSERT_OK(store->DeleteRange(TimeRange(0, 17)));
  // C4 (v4): points at t = 2, 12, 22, 32 — written after the delete, so its
  // FP(t=2) survives and is the query answer.
  ASSERT_OK(store->WriteAll({{2, 5}, {12, 5}, {22, 5}, {32, 5}}));

  M4Query query{0, 40, 1};
  ASSERT_OK_AND_ASSIGN(M4Result result, RunM4Lsm(*store, query, nullptr));
  ASSERT_TRUE(result[0].has_data);
  EXPECT_EQ(result[0].first, (Point{2, 5.0}));
  ExpectAllAgree(*store, query);
}

// Figure 7(b): the TP candidate is overwritten by a later chunk at the same
// timestamp; the next candidate in P'_G wins without a full reload.
TEST(M4LsmTest, PaperExampleTpOverwritten) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path(), 4)));
  // C1 (v1): top value 50 at t=10.
  ASSERT_OK(store->WriteAll({{0, 1}, {10, 50}, {20, 2}, {30, 3}}));
  // C3 (v2): top value 50 at t=110.
  ASSERT_OK(store->WriteAll({{100, 4}, {110, 50}, {120, 5}, {130, 6}}));
  // C4 (v3): overwrites t=110 with a smaller value.
  ASSERT_OK(store->WriteAll({{105, 7}, {110, 20}, {115, 8}, {125, 9}}));

  M4Query query{0, 200, 1};
  ASSERT_OK_AND_ASSIGN(M4Result result, RunM4Lsm(*store, query, nullptr));
  ASSERT_TRUE(result[0].has_data);
  // TP(C3)=(110,50) is stale; TP(C1)=(10,50) is the surviving top.
  EXPECT_EQ(result[0].top.v, 50.0);
  EXPECT_EQ(result[0].top.t, 10);
  ExpectAllAgree(*store, query);
}

TEST(M4LsmTest, WholeChunkDeleted) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path(), 4)));
  ASSERT_OK(store->WriteAll({{0, 1}, {10, 2}, {20, 3}, {30, 4}}));
  ASSERT_OK(store->WriteAll({{100, 5}, {110, 6}, {120, 7}, {130, 8}}));
  ASSERT_OK(store->DeleteRange(TimeRange(0, 50)));  // kills chunk 1 entirely
  M4Query query{0, 200, 2};
  ASSERT_OK_AND_ASSIGN(M4Result result, RunM4Lsm(*store, query, nullptr));
  EXPECT_FALSE(result[0].has_data);
  ASSERT_TRUE(result[1].has_data);
  EXPECT_EQ(result[1].first, (Point{100, 5.0}));
  ExpectAllAgree(*store, query);
}

TEST(M4LsmTest, EverythingDeleted) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path(), 4)));
  ASSERT_OK(store->WriteAll({{0, 1}, {10, 2}, {20, 3}, {30, 4}}));
  ASSERT_OK(store->DeleteRange(TimeRange(kMinTimestamp, kMaxTimestamp)));
  ASSERT_OK_AND_ASSIGN(M4Result result,
                       RunM4Lsm(*store, M4Query{0, 100, 4}, nullptr));
  for (const M4Row& row : result) EXPECT_FALSE(row.has_data);
}

TEST(M4LsmTest, StackedDeletesOnSameRegion) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path(), 10)));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(10, 0, 10)));   // v1: 0..90
  ASSERT_OK(store->DeleteRange(TimeRange(0, 30)));           // v2
  ASSERT_OK(store->WriteAll(MakeLinearSeries(10, 5, 10)));   // v3: 5..95
  ASSERT_OK(store->DeleteRange(TimeRange(20, 60)));          // v4
  ASSERT_OK(store->DeleteRange(TimeRange(50, 80)));          // v5
  ExpectAllAgree(*store, M4Query{0, 100, 5});
  ExpectAllAgree(*store, M4Query{0, 100, 1});
  ExpectAllAgree(*store, M4Query{0, 96, 7});
}

TEST(M4LsmTest, BothStrategiesAgree) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  Rng rng(5);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 80; ++i) {
      ASSERT_OK(store->Write(rng.Uniform(0, 2000), rng.Gaussian(0, 10)));
    }
    ASSERT_OK(store->Flush());
  }
  ASSERT_OK(store->DeleteRange(TimeRange(300, 500)));
  M4Query query{0, 2000, 13};
  M4LsmOptions regression;
  M4LsmOptions binary;
  binary.locate_strategy = LocateStrategy::kBinarySearch;
  ASSERT_OK_AND_ASSIGN(M4Result a, RunM4Lsm(*store, query, nullptr,
                                            regression));
  ASSERT_OK_AND_ASSIGN(M4Result b, RunM4Lsm(*store, query, nullptr, binary));
  EXPECT_TRUE(ResultsEquivalent(a, b)) << FirstMismatch(a, b);
  ExpectAllAgree(*store, query);
}

TEST(M4LsmTest, WidePixelCountsSpanSmallerThanPoints) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeSeries(200, 0, 10, [](size_t i) {
    return static_cast<double>((i * 13) % 29);
  })));
  ASSERT_OK(store->Flush());
  // More spans than points: most spans empty or single-point.
  ExpectAllAgree(*store, M4Query{0, 2000, 511});
}

TEST(M4LsmTest, QueryRangeOutsideData) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(40, 1000, 10)));
  ASSERT_OK(store->Flush());
  // Entirely before, entirely after, and straddling one edge.
  for (M4Query query : {M4Query{0, 900, 3}, M4Query{5000, 6000, 3},
                        M4Query{0, 1055, 4}}) {
    QueryStats stats;
    ASSERT_OK_AND_ASSIGN(M4Result lsm, RunM4Lsm(*store, query, &stats));
    ASSERT_OK_AND_ASSIGN(M4Result udf, RunM4Udf(*store, query, nullptr));
    EXPECT_TRUE(ResultsEquivalent(lsm, udf)) << FirstMismatch(lsm, udf);
  }
  // Fully-disjoint queries read no data at all.
  QueryStats stats;
  ASSERT_OK(RunM4Lsm(*store, M4Query{0, 900, 3}, &stats).status());
  EXPECT_EQ(stats.bytes_read, 0u);
  EXPECT_EQ(stats.chunks_total, 0u);
}

TEST(M4LsmTest, SpanWindowApiMatchesFullRun) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeSeries(200, 0, 10, [](size_t i) {
    return static_cast<double>((i * 31) % 17);
  })));
  ASSERT_OK(store->Flush());
  M4Query query{0, 2000, 10};
  ASSERT_OK_AND_ASSIGN(M4Result full, RunM4Lsm(*store, query, nullptr));
  ASSERT_OK_AND_ASSIGN(M4Result head,
                       RunM4LsmSpans(*store, query, 0, 4, nullptr));
  ASSERT_OK_AND_ASSIGN(M4Result tail,
                       RunM4LsmSpans(*store, query, 4, 10, nullptr));
  ASSERT_EQ(head.size(), 4u);
  ASSERT_EQ(tail.size(), 6u);
  M4Result stitched = head;
  stitched.insert(stitched.end(), tail.begin(), tail.end());
  EXPECT_TRUE(ResultsEquivalent(full, stitched))
      << FirstMismatch(full, stitched);
  // Degenerate and invalid windows.
  ASSERT_OK_AND_ASSIGN(M4Result empty,
                       RunM4LsmSpans(*store, query, 3, 3, nullptr));
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(RunM4LsmSpans(*store, query, 5, 11, nullptr).ok());
  EXPECT_FALSE(RunM4LsmSpans(*store, query, -1, 2, nullptr).ok());
}

// The central property: on arbitrary LSM states (overlap from out-of-order
// writes, overwrites, stacked deletes) and arbitrary query geometry,
// M4-LSM == M4-UDF == oracle.
class M4LsmProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(M4LsmProperty, EquivalentToBaselineAndOracle) {
  Rng rng(GetParam());
  TempDir dir;
  size_t chunk_size = static_cast<size_t>(rng.Uniform(8, 64));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<TsStore> store,
      TsStore::Open(TestConfig(dir.path(), chunk_size,
                               static_cast<size_t>(rng.Uniform(4, 20)))));

  const Timestamp domain = 4000;
  int n_rounds = static_cast<int>(rng.Uniform(1, 7));
  for (int round = 0; round < n_rounds; ++round) {
    if (round > 0 && rng.Bernoulli(0.5)) {
      Timestamp start = rng.Uniform(0, domain);
      ASSERT_OK(store->DeleteRange(
          TimeRange(start, start + rng.Uniform(0, domain / 4))));
    }
    Timestamp base = rng.Uniform(0, domain * 2 / 3);
    int n = static_cast<int>(rng.Uniform(5, 200));
    for (int i = 0; i < n; ++i) {
      // Integer values create plenty of BP/TP ties across chunks.
      ASSERT_OK(store->Write(base + rng.Uniform(0, domain / 3),
                             std::round(rng.Gaussian(0, 20))));
    }
    ASSERT_OK(store->Flush());
  }

  for (int q = 0; q < 4; ++q) {
    M4Query query;
    query.tqs = rng.Uniform(-50, domain);
    query.tqe = query.tqs + rng.Uniform(1, domain);
    query.w = rng.Uniform(1, 100);
    ExpectAllAgree(*store, query, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, M4LsmProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{61}));

// Cost dominance: the merge-free operator never reads more bytes or loads
// more chunks than the load-everything baseline, on any LSM state.
class M4LsmCostProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(M4LsmCostProperty, NeverCostsMoreIoThanBaseline) {
  Rng rng(GetParam() + 1000);
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path(), 50, 10)));
  const Timestamp domain = 5000;
  for (int round = 0; round < 5; ++round) {
    if (round > 0 && rng.Bernoulli(0.4)) {
      Timestamp start = rng.Uniform(0, domain);
      ASSERT_OK(store->DeleteRange(
          TimeRange(start, start + rng.Uniform(0, domain / 6))));
    }
    Timestamp base = rng.Uniform(0, domain / 2);
    int n = static_cast<int>(rng.Uniform(50, 250));
    for (int i = 0; i < n; ++i) {
      ASSERT_OK(store->Write(base + rng.Uniform(0, domain / 2),
                             rng.Gaussian(0, 15)));
    }
    ASSERT_OK(store->Flush());
  }
  for (int64_t w : {1, 8, 40, 200}) {
    M4Query query{0, domain, w};
    QueryStats udf_stats;
    QueryStats lsm_stats;
    ASSERT_OK(RunM4Udf(*store, query, &udf_stats).status());
    ASSERT_OK(RunM4Lsm(*store, query, &lsm_stats).status());
    EXPECT_LE(lsm_stats.bytes_read, udf_stats.bytes_read)
        << "seed " << GetParam() << " w=" << w;
    EXPECT_LE(lsm_stats.chunks_loaded, udf_stats.chunks_loaded)
        << "seed " << GetParam() << " w=" << w;
    EXPECT_LE(lsm_stats.pages_decoded, udf_stats.pages_decoded)
        << "seed " << GetParam() << " w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, M4LsmCostProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

}  // namespace
}  // namespace tsviz
