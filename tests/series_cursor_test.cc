#include "read/series_reader.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "test_util.h"

namespace tsviz {
namespace {

StoreConfig TestConfig(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 50;
  config.memtable_flush_threshold = 50;
  config.encoding.page_size_points = 16;
  return config;
}

TEST(SeriesCursorTest, StreamsSamePointsAsBatchRead) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  Rng rng(1);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 120; ++i) {
      ASSERT_OK(store->Write(rng.Uniform(0, 5000), rng.Gaussian(0, 10)));
    }
    ASSERT_OK(store->Flush());
  }
  ASSERT_OK(store->DeleteRange(TimeRange(1000, 1500)));

  TimeRange range(200, 4200);
  ASSERT_OK_AND_ASSIGN(std::vector<Point> batch,
                       ReadMergedSeries(*store, range, nullptr));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<SeriesCursor> cursor,
                       SeriesCursor::Open(*store, range));
  std::vector<Point> streamed;
  Point p;
  while (true) {
    ASSERT_OK_AND_ASSIGN(bool more, cursor->Next(&p));
    if (!more) break;
    streamed.push_back(p);
  }
  EXPECT_EQ(streamed, batch);
}

TEST(SeriesCursorTest, EmptyRangeYieldsNothing) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(50, 0, 10)));
  ASSERT_OK(store->Flush());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<SeriesCursor> cursor,
                       SeriesCursor::Open(*store, TimeRange(10000, 20000)));
  Point p;
  ASSERT_OK_AND_ASSIGN(bool more, cursor->Next(&p));
  EXPECT_FALSE(more);
}

TEST(SeriesCursorTest, CountsIoLazily) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(500, 0, 10)));
  ASSERT_OK(store->Flush());
  QueryStats stats;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<SeriesCursor> cursor,
                       SeriesCursor::Open(*store, TimeRange(0, 5000), &stats));
  EXPECT_EQ(stats.bytes_read, 0u);  // nothing touched until the first Next
  Point p;
  ASSERT_OK_AND_ASSIGN(bool more, cursor->Next(&p));
  ASSERT_TRUE(more);
  EXPECT_GT(stats.bytes_read, 0u);
  // Only the leading pages have been decoded, not the whole range.
  EXPECT_LT(stats.pages_decoded, 32u);
}

}  // namespace
}  // namespace tsviz
