// Physical-layout invariance: the logical query results (merged series, M4
// representation) must be identical no matter how the same writes and
// deletes are laid out physically — chunk size, page size, codecs, WAL
// on/off. Anything else would mean the operators leak storage details.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "m4/m4_lsm.h"
#include "read/series_reader.h"
#include "test_util.h"
#include "workload/generator.h"
#include "workload/ooo.h"

namespace tsviz {
namespace {

struct PhysicalConfig {
  const char* name;
  size_t points_per_chunk;
  size_t page_size;
  TsCodec ts_codec;
  ValueCodec value_codec;
  bool wal;
};

const PhysicalConfig kConfigs[] = {
    {"small_chunks_gorilla", 20, 5, TsCodec::kTs2Diff, ValueCodec::kGorilla,
     true},
    {"large_chunks_plain", 500, 200, TsCodec::kPlain, ValueCodec::kPlain,
     true},
    {"medium_rle_nowal", 100, 25, TsCodec::kTs2Diff, ValueCodec::kRle,
     false},
    {"one_point_pages", 50, 1, TsCodec::kTs2Diff, ValueCodec::kGorilla,
     true},
};

class PhysicalInvariance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PhysicalInvariance, ResultsIndependentOfLayout) {
  Rng rng(GetParam());
  // One logical history: out-of-order arrivals plus interleaved deletes.
  DatasetSpec spec;
  spec.kind = static_cast<DatasetKind>(GetParam() % 4);
  spec.num_points = 3000;
  spec.seed = GetParam();
  std::vector<Point> points = GenerateDataset(spec);
  std::vector<Point> arrivals = MakeOverlappingOrder(points, 100, 0.3, &rng);
  Timestamp t_lo = points.front().t;
  Timestamp t_hi = points.back().t;
  std::vector<TimeRange> deletes;
  for (int i = 0; i < 3; ++i) {
    Timestamp start = rng.Uniform(t_lo, t_hi);
    deletes.push_back(TimeRange(start, start + (t_hi - t_lo) / 20));
  }
  M4Query query{t_lo, t_hi + 1, rng.Uniform(1, 64)};

  std::vector<Point> reference_merged;
  M4Result reference_m4;
  for (size_t c = 0; c < std::size(kConfigs); ++c) {
    const PhysicalConfig& physical = kConfigs[c];
    TempDir dir;
    StoreConfig config;
    config.data_dir = dir.path();
    config.points_per_chunk = physical.points_per_chunk;
    config.memtable_flush_threshold = physical.points_per_chunk;
    config.enable_wal = physical.wal;
    config.encoding.page_size_points = physical.page_size;
    config.encoding.ts_codec = physical.ts_codec;
    config.encoding.value_codec = physical.value_codec;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(std::move(config)));
    // Interleave: first half of arrivals, deletes, second half.
    std::vector<Point> first_half(arrivals.begin(),
                                  arrivals.begin() + arrivals.size() / 2);
    std::vector<Point> second_half(arrivals.begin() + arrivals.size() / 2,
                                   arrivals.end());
    ASSERT_OK(store->WriteAll(first_half));
    ASSERT_OK(store->Flush());
    for (const TimeRange& del : deletes) {
      ASSERT_OK(store->DeleteRange(del));
    }
    ASSERT_OK(store->WriteAll(second_half));
    ASSERT_OK(store->Flush());

    ASSERT_OK_AND_ASSIGN(
        std::vector<Point> merged,
        ReadMergedSeries(*store, TimeRange(t_lo, t_hi), nullptr));
    ASSERT_OK_AND_ASSIGN(M4Result m4, RunM4Lsm(*store, query, nullptr));
    if (c == 0) {
      reference_merged = std::move(merged);
      reference_m4 = std::move(m4);
      ASSERT_FALSE(reference_merged.empty());
    } else {
      EXPECT_EQ(merged, reference_merged)
          << "seed " << GetParam() << " config " << physical.name;
      EXPECT_TRUE(ResultsEquivalent(m4, reference_m4))
          << "seed " << GetParam() << " config " << physical.name << ": "
          << FirstMismatch(m4, reference_m4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhysicalInvariance,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace tsviz
