#include "viz/ssim.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/random.h"
#include "test_util.h"

namespace tsviz {
namespace {

Bitmap RandomBitmap(int w, int h, double density, uint64_t seed) {
  Rng rng(seed);
  Bitmap bitmap(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (rng.Bernoulli(density)) bitmap.Set(x, y);
    }
  }
  return bitmap;
}

TEST(SsimTest, IdenticalImagesScoreOne) {
  Bitmap a = RandomBitmap(64, 48, 0.2, 1);
  EXPECT_DOUBLE_EQ(Ssim(a, a), 1.0);
  Bitmap empty(32, 32);
  EXPECT_DOUBLE_EQ(Ssim(empty, empty), 1.0);
}

TEST(SsimTest, ComplementScoresLow) {
  Bitmap a(64, 64);
  Bitmap b(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      if ((x + y) % 2 == 0) {
        a.Set(x, y);
      } else {
        b.Set(x, y);
      }
    }
  }
  EXPECT_LT(Ssim(a, b), 0.1);
}

TEST(SsimTest, MonotoneInDamage) {
  Bitmap original = RandomBitmap(128, 64, 0.3, 2);
  Rng rng(3);
  Bitmap light = original;
  Bitmap heavy = original;
  for (int i = 0; i < 2000; ++i) {
    int x = static_cast<int>(rng.Uniform(0, 127));
    int y = static_cast<int>(rng.Uniform(0, 63));
    heavy.Set(x, y);
    if (i < 100) light.Set(x, y);
  }
  double s_light = Ssim(original, light);
  double s_heavy = Ssim(original, heavy);
  EXPECT_GT(s_light, s_heavy);
  EXPECT_LT(s_light, 1.0);
}

TEST(SsimTest, SymmetricAndBounded) {
  Bitmap a = RandomBitmap(56, 40, 0.25, 4);  // non-multiple-of-8 dims
  Bitmap b = RandomBitmap(56, 40, 0.25, 5);
  double ab = Ssim(a, b);
  double ba = Ssim(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GE(ab, -1.0);
  EXPECT_LE(ab, 1.0);
}

TEST(DiffPpmTest, WritesColorCodedDiff) {
  TempDir dir;
  Bitmap truth(4, 1);
  Bitmap got(4, 1);
  truth.Set(0, 0);             // missed -> red
  got.Set(1, 0);               // spurious -> blue
  truth.Set(2, 0);
  got.Set(2, 0);               // correct -> black
  std::string path = dir.path() + "/diff.ppm";
  ASSERT_OK(WriteDiffPpm(truth, got, path));

  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::string header = "P6\n4 1\n255\n";
  ASSERT_EQ(content.substr(0, header.size()), header);
  const uint8_t* px =
      reinterpret_cast<const uint8_t*>(content.data() + header.size());
  EXPECT_EQ(px[0], 255);  // red
  EXPECT_EQ(px[1], 0);
  EXPECT_EQ(px[3], 0);  // blue
  EXPECT_EQ(px[5], 255);
  EXPECT_EQ(px[6], 0);  // black
  EXPECT_EQ(px[9], 255);  // white
}

TEST(DiffPpmTest, RejectsMismatchedDimensions) {
  Bitmap a(4, 4);
  Bitmap b(5, 4);
  EXPECT_EQ(WriteDiffPpm(a, b, "/tmp/never.ppm").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tsviz
