#include "m4/m4_types.h"

#include <gtest/gtest.h>

namespace tsviz {
namespace {

M4Row SampleRow() {
  M4Row row;
  row.has_data = true;
  row.first = {10, 5.0};
  row.last = {90, 6.0};
  row.bottom = {40, -1.0};
  row.top = {60, 9.0};
  return row;
}

TEST(RowsEquivalentTest, IdenticalRowsMatch) {
  EXPECT_TRUE(RowsEquivalent(SampleRow(), SampleRow()));
}

TEST(RowsEquivalentTest, EmptyRowsMatch) {
  EXPECT_TRUE(RowsEquivalent(M4Row{}, M4Row{}));
  EXPECT_FALSE(RowsEquivalent(M4Row{}, SampleRow()));
}

TEST(RowsEquivalentTest, FirstLastRequireExactPoints) {
  M4Row a = SampleRow();
  M4Row b = SampleRow();
  b.first.t += 1;
  EXPECT_FALSE(RowsEquivalent(a, b));
  b = SampleRow();
  b.last.v += 0.5;
  EXPECT_FALSE(RowsEquivalent(a, b));
}

TEST(RowsEquivalentTest, BottomTopCompareOnValueOnly) {
  // Definition 2.1: BP/TP may return any point attaining the extreme value.
  M4Row a = SampleRow();
  M4Row b = SampleRow();
  b.bottom.t = 55;  // different argmin, same value
  b.top.t = 61;
  EXPECT_TRUE(RowsEquivalent(a, b));
  b.bottom.v -= 0.1;
  EXPECT_FALSE(RowsEquivalent(a, b));
}

TEST(ResultsEquivalentTest, SizeAndContent) {
  M4Result a = {SampleRow(), M4Row{}};
  M4Result b = {SampleRow(), M4Row{}};
  EXPECT_TRUE(ResultsEquivalent(a, b));
  b.pop_back();
  EXPECT_FALSE(ResultsEquivalent(a, b));
  EXPECT_NE(FirstMismatch(a, b), "");
}

TEST(FirstMismatchTest, PinpointsSpan) {
  M4Result a = {M4Row{}, SampleRow()};
  M4Result b = {M4Row{}, SampleRow()};
  EXPECT_EQ(FirstMismatch(a, b), "");
  b[1].top.v = 100.0;
  std::string diff = FirstMismatch(a, b);
  EXPECT_NE(diff.find("span 1"), std::string::npos);
}

TEST(ValidateResultInvariantsTest, AcceptsValidRows) {
  EXPECT_EQ(ValidateResultInvariants({SampleRow(), M4Row{}}), "");
}

TEST(ValidateResultInvariantsTest, CatchesViolations) {
  M4Row row = SampleRow();
  row.first.t = 95;  // first after last
  EXPECT_NE(ValidateResultInvariants({row}), "");

  row = SampleRow();
  row.bottom.t = 5;  // bottom outside time window
  EXPECT_NE(ValidateResultInvariants({row}), "");

  row = SampleRow();
  row.bottom.v = 100.0;  // bottom above top
  EXPECT_NE(ValidateResultInvariants({row}), "");

  row = SampleRow();
  row.first.v = -50.0;  // first below bottom
  EXPECT_NE(ValidateResultInvariants({row}), "");
}

TEST(M4RowTest, ToStringShowsEmptiness) {
  EXPECT_EQ(M4Row{}.ToString(), "(empty)");
  EXPECT_NE(SampleRow().ToString().find("first=(10, 5)"), std::string::npos);
}

}  // namespace
}  // namespace tsviz
