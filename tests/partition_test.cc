// Acceptance tests for time-partitioned storage: flush routing, legacy
// layouts, interval pruning, partition-scoped compaction, O(1) TTL drops,
// manifest pinning, and — the load-bearing invariant — M4 bit-equality
// between a partitioned store and a flat twin fed the same workload.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bg/maintenance.h"
#include "common/env.h"
#include "common/random.h"
#include "db/database.h"
#include "m4/m4_lsm.h"
#include "m4/parallel.h"
#include "m4/span.h"
#include "read/metadata_reader.h"
#include "read/series_reader.h"
#include "storage/store.h"
#include "test_util.h"
#include "workload/deletes.h"
#include "workload/generator.h"
#include "workload/ooo.h"

namespace tsviz {
namespace {

namespace fs = std::filesystem;

StoreConfig PartitionedConfig(const std::string& dir, int64_t interval) {
  StoreConfig config;
  config.data_dir = dir;
  config.partition_interval_ms = interval;
  config.points_per_chunk = 50;
  config.memtable_flush_threshold = 1u << 20;  // tests flush explicitly
  config.encoding.page_size_points = 16;
  return config;
}

// Exact (bit-identical) M4 comparison — stricter than ResultsEquivalent,
// which tolerates argmin/argmax ties. Partitioning must not change even
// the tie-breaking: the merged stream the solver sees is identical.
::testing::AssertionResult SameM4(const M4Result& a, const M4Result& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  auto same_point = [](const Point& p, const Point& q) {
    return p.t == q.t && p.v == q.v;
  };
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].has_data != b[i].has_data ||
        (a[i].has_data && !(same_point(a[i].first, b[i].first) &&
                            same_point(a[i].last, b[i].last) &&
                            same_point(a[i].bottom, b[i].bottom) &&
                            same_point(a[i].top, b[i].top)))) {
      return ::testing::AssertionFailure()
             << "row " << i << ": " << a[i].ToString() << " vs "
             << b[i].ToString();
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(PartitionTest, FlushRoutesPointsIntoPartitionDirectories) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(PartitionedConfig(dir.path(), 1000)));
  EXPECT_EQ(store->partition_interval(), 1000);
  // One memtable spanning three partitions, including a negative index.
  for (Timestamp t : {-500, -1, 0, 250, 999, 1000, 1500}) {
    ASSERT_OK(store->Write(t, double(t)));
  }
  ASSERT_OK(store->Flush());

  EXPECT_EQ(store->NumPartitions(), 3u);
  EXPECT_TRUE(fs::exists(dir.path() + "/p-1"));
  EXPECT_TRUE(fs::exists(dir.path() + "/p0"));
  EXPECT_TRUE(fs::exists(dir.path() + "/p1"));
  EXPECT_TRUE(fs::exists(dir.path() + "/partition.meta"));
  // One file per touched partition; no data files at the root (only the
  // WAL, the mods file, and the manifest live there).
  EXPECT_EQ(store->NumFiles(), 3u);
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.is_regular_file()) {
      EXPECT_NE(entry.path().extension(), ".tsdat") << entry.path();
    }
  }
  StoreView view = store->CurrentView();
  for (const StorePartition& part : view.partitions()) {
    EXPECT_FALSE(part.legacy());
    EXPECT_EQ(part.files.size(), 1u);
    for (const ChunkHandle& chunk : part.chunks) {
      EXPECT_GE(chunk.meta->Interval().start, part.interval.start);
      EXPECT_LE(chunk.meta->Interval().end, part.interval.end);
    }
  }
  // All seven points come back merged in time order.
  ASSERT_OK_AND_ASSIGN(std::vector<Point> merged,
                       ReadMergedSeries(view, TimeRange(-1000, 2000), nullptr));
  EXPECT_EQ(merged.size(), 7u);
  EXPECT_EQ(merged.front().t, -500);
  EXPECT_EQ(merged.back().t, 1500);
}

TEST(PartitionTest, PartitionIndexForUsesFloorDivision) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(PartitionedConfig(dir.path(), 1000)));
  EXPECT_EQ(store->PartitionIndexFor(0), 0);
  EXPECT_EQ(store->PartitionIndexFor(999), 0);
  EXPECT_EQ(store->PartitionIndexFor(1000), 1);
  EXPECT_EQ(store->PartitionIndexFor(-1), -1);
  EXPECT_EQ(store->PartitionIndexFor(-1000), -1);
  EXPECT_EQ(store->PartitionIndexFor(-1001), -2);
}

TEST(PartitionTest, LegacyFlatLayoutOpensAsOneUnboundedPartition) {
  TempDir dir;
  // Fixture: a store written before partitioning existed (flat layout).
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(PartitionedConfig(dir.path(), 0)));
    for (int i = 0; i < 100; ++i) ASSERT_OK(store->Write(i * 10, double(i)));
    ASSERT_OK(store->Flush());
  }
  EXPECT_FALSE(fs::exists(dir.path() + "/partition.meta"));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(PartitionedConfig(dir.path(), 0)));
  StoreView view = store->CurrentView();
  ASSERT_EQ(view.partitions().size(), 1u);
  EXPECT_TRUE(view.partitions()[0].legacy());
  EXPECT_EQ(view.partitions()[0].index, kLegacyPartitionIndex);
  // The legacy group still prunes on its data interval.
  EXPECT_EQ(view.partitions()[0].interval, TimeRange(0, 990));

  ASSERT_OK_AND_ASSIGN(std::vector<Point> merged,
                       ReadMergedSeries(view, TimeRange(0, 1000), nullptr));
  EXPECT_EQ(merged.size(), 100u);
  const M4Query query{0, 1000, 25};
  ASSERT_OK_AND_ASSIGN(M4Result rows, RunM4Lsm(view, query, nullptr));
  EXPECT_EQ(rows.size(), 25u);
}

TEST(PartitionTest, MixedLegacyAndPartitionedLayoutStaysReadable) {
  TempDir dir;
  {  // flat era
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(PartitionedConfig(dir.path(), 0)));
    for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i * 10, 1.0));
    ASSERT_OK(store->Flush());
  }
  // Partitioning enabled on the existing directory: root files stay put as
  // the legacy group, new flushes route into p<index>/.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(PartitionedConfig(dir.path(), 1000)));
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(2000 + i * 10, 2.0));
  ASSERT_OK(store->Flush());

  StoreView view = store->CurrentView();
  ASSERT_EQ(view.partitions().size(), 2u);
  EXPECT_TRUE(view.partitions()[0].legacy());  // legacy sorts first
  EXPECT_EQ(view.partitions()[1].index, 2);
  ASSERT_OK_AND_ASSIGN(std::vector<Point> merged,
                       ReadMergedSeries(view, TimeRange(0, 3000), nullptr));
  EXPECT_EQ(merged.size(), 100u);
}

TEST(PartitionTest, ManifestPinsIntervalAgainstConfigChanges) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(PartitionedConfig(dir.path(), 1000)));
    for (int i = 0; i < 30; ++i) ASSERT_OK(store->Write(i * 100, 1.0));
    ASSERT_OK(store->Flush());
  }
  // Reopening with a different configured width keeps the pinned interval.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(PartitionedConfig(dir.path(), 500)));
  EXPECT_EQ(store->partition_interval(), 1000);
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> merged,
      ReadMergedSeries(store->CurrentView(), TimeRange(0, 3000), nullptr));
  EXPECT_EQ(merged.size(), 30u);
}

TEST(PartitionTest, CorruptManifestFailsOpenWithCorruption) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(PartitionedConfig(dir.path(), 1000)));
    for (int i = 0; i < 10; ++i) ASSERT_OK(store->Write(i * 100, 1.0));
    ASSERT_OK(store->Flush());
  }
  const std::string manifest = dir.path() + "/partition.meta";
  ASSERT_OK_AND_ASSIGN(const std::string good,
                       GetEnv()->ReadFileToString(manifest));
  // Garbage, a truncated prefix, and a checksum mismatch must each fail
  // the open loudly instead of silently repartitioning the store.
  for (const std::string& bad :
       {std::string("not a manifest at all\n"), good.substr(0, 12),
        std::string("tsviz.partition.v2 1000 12345\n")}) {
    std::ofstream(manifest, std::ios::trunc) << bad;
    Status status = TsStore::Open(PartitionedConfig(dir.path(), 1000)).status();
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << bad;
    EXPECT_NE(status.ToString().find("partition manifest"), std::string::npos)
        << status.ToString();
  }
  // Restoring the good manifest restores the store.
  std::ofstream(manifest, std::ios::trunc) << good;
  ASSERT_OK(TsStore::Open(PartitionedConfig(dir.path(), 1000)).status());
}

TEST(PartitionTest, ChecksumlessV1ManifestStaysReadable) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(PartitionedConfig(dir.path(), 1000)));
    for (int i = 0; i < 10; ++i) ASSERT_OK(store->Write(i * 100, 1.0));
    ASSERT_OK(store->Flush());
  }
  // A store written before the checksummed v2 format carries a bare v1
  // line; it must open and keep its pinned interval.
  std::ofstream(dir.path() + "/partition.meta", std::ios::trunc)
      << "tsviz.partition.v1 1000\n";
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(PartitionedConfig(dir.path(), 500)));
  EXPECT_EQ(store->partition_interval(), 1000);
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> merged,
      ReadMergedSeries(store->CurrentView(), TimeRange(0, 3000), nullptr));
  EXPECT_EQ(merged.size(), 10u);
}

TEST(PartitionTest, QueriesPruneNonOverlappingPartitions) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(PartitionedConfig(dir.path(), 1000)));
  for (int p = 0; p < 10; ++p) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(store->Write(p * 1000 + i * 50, double(p)));
    }
    ASSERT_OK(store->Flush());  // one file per partition
  }
  ASSERT_EQ(store->NumPartitions(), 10u);

  // Narrow zoom into partition 4.
  QueryStats stats;
  StoreView view = store->CurrentView();
  std::vector<PartitionChunks> groups =
      SelectPartitionChunks(view, TimeRange(4200, 4400), &stats);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].partition_index, 4);
  EXPECT_EQ(stats.partitions_scanned, 1u);
  EXPECT_EQ(stats.partitions_pruned, 9u);

  // The M4 path reports the same pruning and loads metadata only for the
  // partitions in range.
  QueryStats m4_stats;
  const M4Query query{4000, 6000, 20};
  ASSERT_OK_AND_ASSIGN(M4Result rows, RunM4Lsm(view, query, &m4_stats));
  EXPECT_EQ(rows.size(), 20u);
  EXPECT_EQ(m4_stats.partitions_scanned, 2u);
  EXPECT_EQ(m4_stats.partitions_pruned, 8u);
}

TEST(PartitionTest, CompactPartitionLeavesOtherPartitionsUntouched) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(PartitionedConfig(dir.path(), 1000)));
  // Three files in partition 0, two in partition 1 (with an overwrite).
  for (int f = 0; f < 3; ++f) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(store->Write(i * 50, double(f)));
    }
    ASSERT_OK(store->Flush());
  }
  for (int f = 0; f < 2; ++f) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(store->Write(1000 + i * 50, double(f)));
    }
    ASSERT_OK(store->Flush());
  }
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> before,
      ReadMergedSeries(store->CurrentView(), TimeRange(0, 2000), nullptr));

  auto files_in = [&](const StoreView& view, int64_t index) {
    for (const StorePartition& part : view.partitions()) {
      if (part.index == index) return part.files;
    }
    return std::vector<std::shared_ptr<FileReader>>{};
  };
  std::vector<std::shared_ptr<FileReader>> p1_before =
      files_in(store->CurrentView(), 1);
  ASSERT_EQ(p1_before.size(), 2u);

  ASSERT_OK(store->CompactPartition(0));
  StoreView view = store->CurrentView();
  EXPECT_EQ(files_in(view, 0).size(), 1u);
  // Partition 1 still holds the exact same reader objects.
  EXPECT_EQ(files_in(view, 1), p1_before);

  ASSERT_OK_AND_ASSIGN(std::vector<Point> after,
                       ReadMergedSeries(view, TimeRange(0, 2000), nullptr));
  EXPECT_EQ(before, after);
  // Compacting a partition that does not exist is a no-op, not an error.
  ASSERT_OK(store->CompactPartition(77));
}

TEST(PartitionTest, TtlExpiryDropsFullyExpiredPartitionsWholesale) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(PartitionedConfig(dir.path(), 1000)));
  for (int p = 0; p < 5; ++p) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(store->Write(p * 1000 + i * 100, double(p)));
    }
    ASSERT_OK(store->Flush());
  }
  ASSERT_EQ(store->NumPartitions(), 5u);

  // Watermark = data_end - ttl = 4900 - 2400 = 2500: partitions 0 and 1
  // ([0,1000), [1000,2000)) are wholly below it; partition 2 straddles.
  EXPECT_EQ(store->CountFullyExpiredPartitions(2400), 2u);
  bool expired = false;
  ASSERT_OK(store->ExpireTtl(2400, &expired));
  EXPECT_TRUE(expired);

  EXPECT_EQ(store->NumPartitions(), 3u);
  EXPECT_FALSE(fs::exists(dir.path() + "/p0"));
  EXPECT_FALSE(fs::exists(dir.path() + "/p1"));
  EXPECT_TRUE(fs::exists(dir.path() + "/p2"));
  EXPECT_EQ(store->CountFullyExpiredPartitions(2400), 0u);

  // The boundary partition is covered by the tombstone, not the drop.
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> live,
      ReadMergedSeries(store->CurrentView(), TimeRange(0, 5000), nullptr));
  ASSERT_FALSE(live.empty());
  EXPECT_GE(live.front().t, 2500);
  EXPECT_EQ(live.back().t, 4900);

  // Survivors reopen identically (the tombstone preceded the unlink).
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> reopened,
                       TsStore::Open(PartitionedConfig(dir.path(), 1000)));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> replayed,
      ReadMergedSeries(reopened->CurrentView(), TimeRange(0, 5000), nullptr));
  EXPECT_EQ(live, replayed);
}

TEST(PartitionTest, MaintenanceTicksCompactHotPartitionsIndividually) {
  TempDir dir;
  DatabaseConfig config;
  config.root_dir = dir.path();
  config.series_defaults = PartitionedConfig("", 1000);  // data_dir per series
  config.maintenance.enabled = false;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db, Database::Open(config));
  db->StartMaintenance();
  bg::MaintenanceManager& mgr = db->maintenance();
  mgr.set_memtable_flush_bytes(0);
  mgr.set_compaction_files(3);
  ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetOrCreateSeries("s"));
  // Partition 0 accumulates three files; partition 5 stays cold with one.
  for (int i = 0; i < 5; ++i) ASSERT_OK(store->Write(5000 + i * 100, 1.0));
  ASSERT_OK(store->Flush());
  for (int f = 0; f < 3; ++f) {
    for (int i = 0; i < 5; ++i) ASSERT_OK(store->Write(i * 100, double(f)));
    ASSERT_OK(store->Flush());
  }

  EXPECT_GE(mgr.Tick(), 1u);
  mgr.Drain();
  bool saw_partition_job = false;
  for (const bg::JobInfo& info : mgr.ListJobs()) {
    if (info.type == "compact:p0") saw_partition_job = true;
    EXPECT_NE(info.type, "compact:p5");  // cold partition never scheduled
  }
  EXPECT_TRUE(saw_partition_job);
  StoreView view = store->CurrentView();
  for (const StorePartition& part : view.partitions()) {
    EXPECT_EQ(part.files.size(), 1u) << "partition " << part.index;
  }
  db->StopMaintenance();
}

TEST(PartitionTest, SpanCutsAlignToPartitionBoundaries) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(PartitionedConfig(dir.path(), 1000)));
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 25; ++i) {
      ASSERT_OK(store->Write(p * 1000 + i * 40, double(i)));
    }
    ASSERT_OK(store->Flush());
  }
  StoreView view = store->CurrentView();
  const M4Query query{0, 4000, 100};
  SpanSet spans(query);

  const std::vector<int64_t> cuts = PartitionAlignedSpanCuts(view, query, 4);
  ASSERT_EQ(cuts.size(), 5u);
  EXPECT_EQ(cuts.front(), 0);
  EXPECT_EQ(cuts.back(), query.w);
  for (size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_LE(cuts[i - 1], cuts[i]);
  }
  // Every interior cut sits exactly on a partition boundary's span here —
  // the even split (25/50/75) coincides with boundaries 1000/2000/3000.
  for (size_t i = 1; i + 1 < cuts.size(); ++i) {
    const Timestamp t = spans.SpanStart(cuts[i]);
    EXPECT_EQ(t % 1000, 0) << "cut " << i << " at span " << cuts[i];
  }

  // Serial and parallel agree bit-for-bit regardless of cut placement.
  ASSERT_OK_AND_ASSIGN(M4Result serial, RunM4Lsm(view, query, nullptr));
  ASSERT_OK_AND_ASSIGN(M4Result parallel,
                       RunM4LsmParallel(view, query, 4, nullptr));
  EXPECT_TRUE(SameM4(serial, parallel));
}

// The headline acceptance test: a partitioned store and a flat twin ingest
// the same BallSpeed-like workload — out-of-order arrivals, deletes, an
// unflushed WAL tail surviving a crash — and answer M4 bit-identically at
// every stage. Partitioning changes the files, never the answer.
TEST(PartitionEquivalenceTest, PartitionedMatchesFlatOnBallSpeedWorkload) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kBallSpeed;
  spec.num_points = 3000;
  spec.start_time = 0;
  std::vector<Point> points = GenerateDataset(spec);
  Rng rng(11);
  std::vector<Point> arrivals = MakeOverlappingOrder(points, 50, 0.3, &rng);
  const Timestamp t_end = points.back().t;
  const int64_t interval = (t_end + 1) / 8;  // ~8 partitions

  TempDir part_dir;
  TempDir flat_dir;
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<TsStore> parted,
      TsStore::Open(PartitionedConfig(part_dir.path(), interval)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> flat,
                       TsStore::Open(PartitionedConfig(flat_dir.path(), 0)));

  auto both_m4_match = [&](const std::string& stage) {
    for (int64_t w : {7, 100, 333}) {
      const M4Query query{0, t_end + 1, w};
      auto a = RunM4Lsm(parted->CurrentView(), query, nullptr);
      auto b = RunM4Lsm(flat->CurrentView(), query, nullptr);
      ASSERT_OK(a.status());
      ASSERT_OK(b.status());
      EXPECT_TRUE(SameM4(*a, *b)) << stage << " w=" << w;
    }
  };

  // Ingest in lockstep, flushing every 200 arrivals.
  for (size_t i = 0; i < arrivals.size(); ++i) {
    ASSERT_OK(parted->Write(arrivals[i].t, arrivals[i].v));
    ASSERT_OK(flat->Write(arrivals[i].t, arrivals[i].v));
    if ((i + 1) % 200 == 0) {
      ASSERT_OK(parted->Flush());
      ASSERT_OK(flat->Flush());
    }
  }
  both_m4_match("after ingest");
  EXPECT_GT(parted->NumPartitions(), 4u);

  // Identical delete ranges (planned once, applied to both).
  DeleteWorkloadSpec del_spec;
  del_spec.delete_fraction = 0.2;
  del_spec.seed = 23;
  for (const TimeRange& range : PlanDeleteRanges(*flat, del_spec)) {
    ASSERT_OK(parted->DeleteRange(range));
    ASSERT_OK(flat->DeleteRange(range));
  }
  both_m4_match("after deletes");

  // Maintenance concurrent with queries: partition-scoped compactions on
  // one store, a monolithic compaction on the other, queries racing both.
  {
    std::atomic<bool> stop{false};
    std::thread background([&] {
      while (!stop.load()) {
        const StoreView snapshot = parted->CurrentView();
        for (const StorePartition& part : snapshot.partitions()) {
          if (!part.legacy()) {
            ASSERT_OK(parted->CompactPartition(part.index));
          }
        }
        ASSERT_OK(flat->Compact());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (int round = 0; round < 20; ++round) {
      both_m4_match("during maintenance round " + std::to_string(round));
    }
    stop = true;
    background.join();
  }
  both_m4_match("after maintenance");

  // Crash with an unflushed tail: close both stores without flushing, then
  // reopen — WAL replay must restore the twins to agreement.
  for (int i = 0; i < 100; ++i) {
    const Timestamp t = t_end - 500 + i;
    ASSERT_OK(parted->Write(t, std::sin(i * 0.2) * 10));
    ASSERT_OK(flat->Write(t, std::sin(i * 0.2) * 10));
  }
  EXPECT_GT(parted->memtable_size(), 0u);
  parted.reset();  // ~TsStore never flushes: the tail lives only in the WAL
  flat.reset();
  ASSERT_OK_AND_ASSIGN(
      parted, TsStore::Open(PartitionedConfig(part_dir.path(), interval)));
  ASSERT_OK_AND_ASSIGN(flat,
                       TsStore::Open(PartitionedConfig(flat_dir.path(), 0)));
  EXPECT_GT(parted->memtable_size(), 0u);  // the tail came back
  both_m4_match("after crash recovery");
}

}  // namespace
}  // namespace tsviz
