#include "encoding/gorilla.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "test_util.h"

namespace tsviz {
namespace {

void ExpectRoundTrip(const std::vector<Value>& values) {
  std::string buf;
  ASSERT_OK(EncodeGorilla(values, &buf));
  std::vector<Value> decoded;
  ASSERT_OK(DecodeGorilla(buf, values.size(), &decoded));
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::isnan(values[i])) {
      EXPECT_TRUE(std::isnan(decoded[i])) << "index " << i;
    } else {
      EXPECT_EQ(decoded[i], values[i]) << "index " << i;
    }
  }
}

TEST(GorillaTest, EmptyAndSingle) {
  ExpectRoundTrip({});
  ExpectRoundTrip({3.14159});
  ExpectRoundTrip({0.0});
}

TEST(GorillaTest, ConstantSeriesIsOneBitPerPoint) {
  std::vector<Value> values(10000, 42.5);
  std::string buf;
  ASSERT_OK(EncodeGorilla(values, &buf));
  // 8 bytes header + ~1 bit per repeat.
  EXPECT_LT(buf.size(), 8u + 10000 / 8 + 2);
  ExpectRoundTrip(values);
}

TEST(GorillaTest, SlowlyVaryingSeries) {
  std::vector<Value> values;
  double v = 100.0;
  for (int i = 0; i < 5000; ++i) {
    v += 0.01;
    values.push_back(v);
  }
  ExpectRoundTrip(values);
}

TEST(GorillaTest, SpecialValues) {
  ExpectRoundTrip({0.0, -0.0, 1.0, -1.0,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::quiet_NaN(),
                   std::numeric_limits<double>::denorm_min(),
                   std::numeric_limits<double>::max(),
                   std::numeric_limits<double>::lowest(), 0.0});
}

TEST(GorillaTest, AlternatingExtremes) {
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(i % 2 == 0 ? 1e300 : -1e-300);
  }
  ExpectRoundTrip(values);
}

TEST(GorillaTest, RandomRoundTrip) {
  Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    std::vector<Value> values;
    size_t n = static_cast<size_t>(rng.Uniform(1, 3000));
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Uniform(0, 3)) {
        case 0:
          values.push_back(rng.Gaussian(0, 1e6));
          break;
        case 1:
          values.push_back(static_cast<double>(rng.Uniform(-100, 100)));
          break;
        case 2:
          values.push_back(values.empty() ? 0.0 : values.back());
          break;
        default:
          values.push_back(rng.UniformReal(-1.0, 1.0));
      }
    }
    ExpectRoundTrip(values);
  }
}

TEST(GorillaTest, TruncatedStreamIsCorruption) {
  std::vector<Value> values = {1.0, 2.0, 3.0, 4.5, 5.25};
  std::string buf;
  ASSERT_OK(EncodeGorilla(values, &buf));
  std::vector<Value> decoded;
  EXPECT_EQ(
      DecodeGorilla(std::string_view(buf).substr(0, 9), 5, &decoded).code(),
      StatusCode::kCorruption);
}

TEST(GorillaTest, DecodingMoreThanEncodedFails) {
  std::vector<Value> values = {1.0};
  std::string buf;
  ASSERT_OK(EncodeGorilla(values, &buf));
  std::vector<Value> decoded;
  // Asking for 100 values walks off the end of the bit stream.
  EXPECT_FALSE(DecodeGorilla(buf, 100, &decoded).ok());
}

}  // namespace
}  // namespace tsviz
