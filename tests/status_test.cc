#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace tsviz {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UsesAssignOrReturn(int x, int* out) {
  TSVIZ_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  Status s = UsesAssignOrReturn(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 10);  // untouched on error
}

Status UsesReturnIfError(bool fail) {
  TSVIZ_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(false).ok());
  EXPECT_EQ(UsesReturnIfError(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace tsviz
