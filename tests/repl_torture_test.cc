// Crash and fault torture for the replication subsystem.
//
// The torture script drives a primary/follower pair over loopback through
// every replication crash point: the primary's {log append, store apply}
// window and both sides of the follower's watermark commit. Each crash test
// forks a child that runs BOTH databases, arms exactly one crash point, and
// dies at it (the applier thread and the write path both live in the
// child). The parent then recovers by re-running the whole deterministic
// script against the surviving directories and asserts the follower's M4
// representation is bit-identical to the primary's and to a twin pair that
// never crashed. The equivalence argument is the same as the storage
// torture's: the script is deterministic, every replicated op is
// effect-idempotent, and replay from any watermark re-applies a suffix
// whose re-execution cannot change the final state.
//
// The fault sweeps then run the live pair under randomized EIO, short-read
// and torn-append injection: any Status outcome is acceptable while faults
// are armed, but neither process may crash, and after the injection stops
// (plus a restart, the recovery a real deployment would perform) the pair
// must reconverge bit-identically.

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "db/database.h"
#include "test_util.h"

namespace tsviz {
namespace {

// Every replication crash point registered in src/repl and src/db.
// tools/check_crashpoints.py verifies this file mentions each repl.* point,
// and CrashPointDiscovery verifies the script actually reaches them.
const char* const kReplCrashPoints[] = {
    "repl.log.after_append",
    "repl.apply.after_apply",
    "repl.watermark.before_commit",
    "repl.watermark.after_commit",
};

DatabaseConfig ReplConfig(const std::string& root) {
  DatabaseConfig config;
  config.root_dir = root;
  config.series_defaults.points_per_chunk = 50;
  config.series_defaults.memtable_flush_threshold = 100000;
  return config;
}

// Blocks until the follower has applied the primary's whole log (state
// STREAMING, sequence numbers equal); a bounded wait so a wedged child
// reports an error instead of hanging the fork harness.
Status AwaitCatchUp(Database& follower, Database& primary, int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  for (;;) {
    const ReplicationStatus fs = follower.replication_status();
    const ReplicationStatus ps = primary.replication_status();
    if (fs.state == "STREAMING" && fs.last_seq == ps.last_seq) {
      return Status::OK();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable(
          "follower stuck at " + std::to_string(fs.last_seq) + "/" +
          std::to_string(ps.last_seq) + " in state " + fs.state);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// The deterministic workload. Must traverse every name in kReplCrashPoints
// and every replicated op (put batch, range delete, series drop), across
// both the bootstrap and the live-streaming phase.
Status RunReplTortureScript(const std::string& primary_dir,
                            const std::string& follower_dir) {
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<Database> primary,
                         Database::Open(ReplConfig(primary_dir)));
  // Pre-replication history: carried to followers by the bootstrap
  // baseline on the first EnablePrimary, by log replay afterwards.
  std::vector<Point> history;
  for (int64_t t = 0; t < 150; ++t) {
    history.push_back({t, static_cast<double>(t) * 0.5});
  }
  TSVIZ_RETURN_IF_ERROR(primary->WriteBatch("t", history));
  TSVIZ_RETURN_IF_ERROR(primary->EnablePrimary(0));

  // Live mutations: logged before applied (repl.log.after_append).
  std::vector<Point> live;
  for (int64_t t = 150; t < 300; ++t) {
    live.push_back({t, 1000.0 - static_cast<double>(t)});
  }
  TSVIZ_RETURN_IF_ERROR(primary->WriteBatch("t", live));
  TSVIZ_RETURN_IF_ERROR(primary->Write("victim", 1, 1.0));
  TSVIZ_RETURN_IF_ERROR(primary->Write("victim", 2, 2.0));
  TSVIZ_RETURN_IF_ERROR(primary->DeleteRange("t", TimeRange(40, 79)));
  TSVIZ_RETURN_IF_ERROR(primary->DropSeries("victim"));

  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<Database> follower,
                         Database::Open(ReplConfig(follower_dir)));
  TSVIZ_RETURN_IF_ERROR(
      follower->EnableReplica("127.0.0.1", primary->repl_port()));
  TSVIZ_RETURN_IF_ERROR(AwaitCatchUp(*follower, *primary, 30000));

  // Streaming-phase records: applied while the follower is caught up, so
  // the watermark commit points are traversed past the bootstrap too.
  TSVIZ_RETURN_IF_ERROR(primary->WriteBatch(
      "t", {{300, 3.0}, {301, -3.0}, {302, 30.0}}));
  TSVIZ_RETURN_IF_ERROR(AwaitCatchUp(*follower, *primary, 30000));

  TSVIZ_RETURN_IF_ERROR(primary->FlushAll());
  TSVIZ_RETURN_IF_ERROR(follower->FlushAll());
  return Status::OK();
}

Result<M4Result> QueryReplResult(const std::string& dir) {
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                         Database::Open(ReplConfig(dir)));
  const M4Query query{0, 303, 25};
  return db->QueryM4("t", query, nullptr);
}

// Strict equality: recovery must reproduce the exact representation.
void AssertResultsIdentical(const M4Result& got, const M4Result& want,
                            const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].has_data, want[i].has_data) << label << " span " << i;
    if (!got[i].has_data) continue;
    EXPECT_EQ(got[i].first, want[i].first) << label << " span " << i;
    EXPECT_EQ(got[i].last, want[i].last) << label << " span " << i;
    EXPECT_EQ(got[i].bottom, want[i].bottom) << label << " span " << i;
    EXPECT_EQ(got[i].top, want[i].top) << label << " span " << i;
  }
}

// The script must reach every registered replication crash point, or the
// kill tests below are vacuous.
TEST(ReplTortureTest, CrashPointDiscovery) {
  TempDir primary_dir;
  TempDir follower_dir;
  ASSERT_OK(RunReplTortureScript(primary_dir.path(), follower_dir.path()));
  const std::vector<std::string> seen = SeenCrashPoints();
  for (const char* name : kReplCrashPoints) {
    EXPECT_TRUE(std::find(seen.begin(), seen.end(), name) != seen.end())
        << "replication torture script never reached crash point " << name;
  }
}

TEST(ReplTortureTest, KillAtEveryCrashPointRecoversBitIdentical) {
  // The never-crashed twin pair, computed once.
  TempDir twin_primary;
  TempDir twin_follower;
  ASSERT_OK(RunReplTortureScript(twin_primary.path(), twin_follower.path()));
  M4Result twin;
  ASSERT_OK_AND_ASSIGN(twin, QueryReplResult(twin_follower.path()));
  ASSERT_FALSE(twin.empty());
  M4Result twin_on_primary;
  ASSERT_OK_AND_ASSIGN(twin_on_primary, QueryReplResult(twin_primary.path()));
  AssertResultsIdentical(twin, twin_on_primary, "twin pair");

  for (const char* name : kReplCrashPoints) {
    TempDir primary_dir;
    TempDir follower_dir;
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: both databases live here, so the armed point kills the
      // whole pair no matter which side (write path or applier thread)
      // traverses it. Completing the script means the point was never
      // reached; report that distinctly.
      ArmCrashPoint(name);
      const Status status =
          RunReplTortureScript(primary_dir.path(), follower_dir.path());
      std::_Exit(status.ok() ? 0 : 3);
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << name;
    ASSERT_EQ(WEXITSTATUS(wstatus), kCrashPointExitCode)
        << name << ": child exited " << WEXITSTATUS(wstatus)
        << " (0 = script completed without reaching the point, 3 = script "
           "error before the point)";

    // Recover: re-run the whole script. The primary replays its log tail
    // past the applied watermark; the follower resumes from its durable
    // watermark (re-wiping first if it died mid-resync).
    const Status recovery =
        RunReplTortureScript(primary_dir.path(), follower_dir.path());
    ASSERT_TRUE(recovery.ok())
        << "recovery after " << name << ": " << recovery.ToString();
    M4Result follower_result;
    ASSERT_OK_AND_ASSIGN(follower_result,
                         QueryReplResult(follower_dir.path()));
    M4Result primary_result;
    ASSERT_OK_AND_ASSIGN(primary_result, QueryReplResult(primary_dir.path()));
    AssertResultsIdentical(follower_result, primary_result,
                           std::string(name) + " follower vs primary");
    AssertResultsIdentical(follower_result, twin,
                           std::string(name) + " follower vs twin");
  }
}

// Randomized fault sweeps over a live pair. Faults attach to files opened
// after SetFaultConfig: relay log reads (re-opened per pull), watermark
// commits, and any series created during the faulty window all run under
// injection. Any operation may fail with a Status; nothing may crash. After
// the injection stops, both sides restart — the recovery a crashed-disk
// deployment performs — and must reconverge bit-identically.
TEST(ReplTortureTest, FaultSweepNeverCrashesAndReconverges) {
  int reattached = 0;
  for (int fault_kind = 0; fault_kind < 3; ++fault_kind) {
    for (const uint64_t start : {3u, 11u}) {
      TempDir primary_dir;
      TempDir follower_dir;
      // Clean setup: a streaming pair with real history.
      ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> primary,
                           Database::Open(ReplConfig(primary_dir.path())));
      std::vector<Point> history;
      for (int64_t t = 0; t < 100; ++t) {
        history.push_back({t, static_cast<double>(t)});
      }
      ASSERT_OK(primary->WriteBatch("t", history));
      ASSERT_OK(primary->EnablePrimary(0));
      ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> follower,
                           Database::Open(ReplConfig(follower_dir.path())));
      ASSERT_OK(follower->EnableReplica("127.0.0.1", primary->repl_port()));
      ASSERT_OK(AwaitCatchUp(*follower, *primary, 30000));

      // The faulty window: every outcome must be a Status, never a crash.
      FaultConfig config;
      config.seed = start * 131 + static_cast<uint64_t>(fault_kind);
      config.start_after = start;
      if (fault_kind == 0) {
        config.eio_every = 5;
      } else if (fault_kind == 1) {
        config.short_read_every = 5;
      } else {
        config.torn_append_every = 5;
      }
      SetFaultConfig(config);
      for (int64_t burst = 0; burst < 10; ++burst) {
        std::vector<Point> points;
        for (int64_t t = 0; t < 20; ++t) {
          points.push_back({100 + burst * 20 + t,
                            static_cast<double>(burst * 20 + t) * -1.5});
        }
        (void)primary->WriteBatch("t", points);
        // A series created under injection exercises the apply-side WAL
        // and store-creation failure paths on both ends.
        (void)primary->Write("hot" + std::to_string(burst), 1, 1.0);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      SetFaultConfig(FaultConfig{});

      // Restart both sides under a clean env: the primary replays its log
      // tail past the applied watermark (healing any append-applied gaps),
      // the follower resumes from its durable watermark with fresh file
      // handles. Then the pair must reconverge.
      follower.reset();
      primary.reset();
      ASSERT_OK_AND_ASSIGN(primary,
                           Database::Open(ReplConfig(primary_dir.path())));
      ASSERT_OK(primary->EnablePrimary(0));
      ASSERT_OK(primary->WriteBatch("t", {{900, 9.0}, {901, -9.0}}));
      ASSERT_OK_AND_ASSIGN(follower,
                           Database::Open(ReplConfig(follower_dir.path())));
      ASSERT_OK(follower->EnableReplica("127.0.0.1", primary->repl_port()));
      ++reattached;
      ASSERT_OK(AwaitCatchUp(*follower, *primary, 30000));
      ASSERT_OK(primary->FlushAll());
      ASSERT_OK(follower->FlushAll());

      const M4Query query{0, 1000, 25};
      M4Result on_primary;
      ASSERT_OK_AND_ASSIGN(on_primary,
                           primary->QueryM4("t", query, nullptr));
      M4Result on_follower;
      ASSERT_OK_AND_ASSIGN(on_follower,
                           follower->QueryM4("t", query, nullptr));
      AssertResultsIdentical(
          on_follower, on_primary,
          "kind " + std::to_string(fault_kind) + " start " +
              std::to_string(start));
    }
  }
  EXPECT_EQ(reattached, 6);
}

}  // namespace
}  // namespace tsviz
