#include "bg/job_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "test_util.h"

namespace tsviz::bg {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// A manually-released latch jobs can block on, to hold a worker busy while
// the test inspects scheduler state.
class Gate {
 public:
  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

// Polls `pred` for up to five seconds; background threads make exact
// wait-points impossible, so tests converge on observable state instead.
template <typename Pred>
bool Eventually(Pred pred) {
  const auto deadline = steady_clock::now() + std::chrono::seconds(5);
  while (steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return pred();
}

uint64_t RunsOf(const JobScheduler& scheduler, uint64_t id) {
  for (const JobInfo& info : scheduler.ListJobs()) {
    if (info.id == id) return info.runs;
  }
  return 0;
}

TEST(JobSchedulerTest, OneShotRunsAndArchives) {
  JobScheduler scheduler;
  scheduler.Start();
  std::atomic<int> runs{0};
  uint64_t id = scheduler.Submit("s", "flush", [&] {
    ++runs;
    return Status::OK();
  });
  scheduler.Drain();
  EXPECT_EQ(runs.load(), 1);
  bool archived = false;
  for (const JobInfo& info : scheduler.ListJobs()) {
    if (info.id != id) continue;
    archived = true;
    EXPECT_EQ(info.state, JobState::kDone);
    EXPECT_EQ(info.runs, 1u);
    EXPECT_EQ(info.last_status, "OK");
  }
  EXPECT_TRUE(archived);
  scheduler.Stop();
}

TEST(JobSchedulerTest, FailedJobReportsStatus) {
  JobScheduler scheduler;
  scheduler.Start();
  uint64_t id = scheduler.Submit(
      "s", "flush", [] { return Status::IoError("disk full"); });
  scheduler.Drain();
  bool seen = false;
  for (const JobInfo& info : scheduler.ListJobs()) {
    if (info.id != id) continue;
    seen = true;
    EXPECT_EQ(info.state, JobState::kFailed);
    EXPECT_NE(info.last_status.find("disk full"), std::string::npos);
  }
  EXPECT_TRUE(seen);
  scheduler.Stop();
}

TEST(JobSchedulerTest, PeriodicJobFiresRepeatedly) {
  JobScheduler scheduler;
  scheduler.Start();
  std::atomic<int> runs{0};
  uint64_t id = scheduler.SubmitPeriodic("", "tick", milliseconds(1), [&] {
    ++runs;
    return Status::OK();
  });
  EXPECT_TRUE(Eventually([&] { return runs.load() >= 3; }));
  EXPECT_GE(RunsOf(scheduler, id), 3u);
  scheduler.Stop();
  // After Stop no callback may fire again.
  int frozen = runs.load();
  std::this_thread::sleep_for(milliseconds(10));
  EXPECT_EQ(runs.load(), frozen);
}

TEST(JobSchedulerTest, PerKeyJobsNeverOverlap) {
  JobScheduler scheduler(JobScheduler::Options{.num_workers = 4});
  scheduler.Start();
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  std::atomic<int> runs{0};
  for (int i = 0; i < 32; ++i) {
    scheduler.Submit("series-a", "flush-" + std::to_string(i), [&] {
      int now = ++active;
      int seen = max_active.load();
      while (now > seen && !max_active.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(milliseconds(1));
      --active;
      ++runs;
      return Status::OK();
    });
  }
  scheduler.Drain();
  EXPECT_EQ(runs.load(), 32);
  EXPECT_EQ(max_active.load(), 1);
  scheduler.Stop();
}

TEST(JobSchedulerTest, DistinctKeysRunConcurrently) {
  JobScheduler scheduler(JobScheduler::Options{.num_workers = 2});
  scheduler.Start();
  // Each job waits for the other to start: only concurrent execution on the
  // two workers lets either finish.
  std::atomic<int> started{0};
  auto meet = [&] {
    ++started;
    if (!Eventually([&] { return started.load() >= 2; })) {
      return Status::Internal("peer never started");
    }
    return Status::OK();
  };
  scheduler.Submit("a", "flush", meet);
  scheduler.Submit("b", "flush", meet);
  scheduler.Drain();
  for (const JobInfo& info : scheduler.ListJobs()) {
    EXPECT_EQ(info.state, JobState::kDone) << info.key;
  }
  scheduler.Stop();
}

TEST(JobSchedulerTest, PendingDuplicatesCoalesce) {
  JobScheduler scheduler;
  scheduler.Start();
  Gate gate;
  std::atomic<int> flushes{0};
  // Occupy the single worker so subsequent submissions stay pending.
  scheduler.Submit("s", "block", [&] {
    gate.Wait();
    return Status::OK();
  });
  EXPECT_TRUE(Eventually([&] { return scheduler.queue_depth() == 0; }));
  uint64_t first = scheduler.Submit("s", "flush", [&] {
    ++flushes;
    return Status::OK();
  });
  uint64_t second = scheduler.Submit("s", "flush", [&] {
    ++flushes;
    return Status::OK();
  });
  uint64_t other = scheduler.Submit("s", "compact", [] {
    return Status::OK();
  });
  EXPECT_EQ(first, second);   // same (key, type) while pending: coalesced
  EXPECT_NE(first, other);    // different type: distinct job
  gate.Release();
  scheduler.Drain();
  EXPECT_EQ(flushes.load(), 1);
  scheduler.Stop();
}

TEST(JobSchedulerTest, CancelPendingJob) {
  JobScheduler scheduler;
  scheduler.Start();
  Gate gate;
  scheduler.Submit("s", "block", [&] {
    gate.Wait();
    return Status::OK();
  });
  std::atomic<int> runs{0};
  uint64_t id = scheduler.Submit("s", "flush", [&] {
    ++runs;
    return Status::OK();
  });
  EXPECT_TRUE(scheduler.Cancel(id));
  EXPECT_FALSE(scheduler.Cancel(id));  // already gone
  gate.Release();
  scheduler.Drain();
  EXPECT_EQ(runs.load(), 0);
  bool cancelled = false;
  for (const JobInfo& info : scheduler.ListJobs()) {
    if (info.id == id) cancelled = info.state == JobState::kCancelled;
  }
  EXPECT_TRUE(cancelled);
  scheduler.Stop();
}

TEST(JobSchedulerTest, RateLimitBoundsJobStarts) {
  // Burst budget is one second's worth (50 tokens); 60 jobs therefore need
  // at least 10 extra tokens, i.e. >= 200ms of accrual. Only the lower
  // bound is asserted — wall-clock noise can just make it slower.
  JobScheduler scheduler(
      JobScheduler::Options{.num_workers = 2, .max_jobs_per_sec = 50});
  scheduler.Start();
  const auto start = steady_clock::now();
  for (int i = 0; i < 60; ++i) {
    scheduler.Submit("k" + std::to_string(i), "flush",
                     [] { return Status::OK(); });
  }
  scheduler.Drain();
  const auto elapsed = steady_clock::now() - start;
  EXPECT_GE(elapsed, milliseconds(150));
  scheduler.Stop();
}

TEST(JobSchedulerTest, QuiesceCancelsPendingAndWaitsOutRunning) {
  JobScheduler scheduler;
  scheduler.Start();
  Gate gate;
  std::atomic<bool> finished{false};
  scheduler.Submit("s", "slow", [&] {
    gate.Wait();
    finished = true;
    return Status::OK();
  });
  std::atomic<int> runs{0};
  scheduler.SubmitPeriodic("s", "tick", milliseconds(1), [&] {
    ++runs;
    return Status::OK();
  });
  // Let the slow job reach its gate, then quiesce from another thread.
  EXPECT_TRUE(Eventually([&] { return scheduler.queue_depth() <= 1; }));
  std::thread quiescer([&] { scheduler.Quiesce("s"); });
  std::this_thread::sleep_for(milliseconds(5));
  gate.Release();
  quiescer.join();
  // The running job was waited out and every "s" job (including the
  // periodic one) is gone; no callback can touch the key anymore.
  EXPECT_TRUE(finished.load());
  for (const JobInfo& info : scheduler.ListJobs()) {
    if (info.key == "s") {
      EXPECT_TRUE(info.state == JobState::kDone ||
                  info.state == JobState::kCancelled)
          << JobStateName(info.state);
    }
  }
  int frozen = runs.load();
  std::this_thread::sleep_for(milliseconds(10));
  EXPECT_EQ(runs.load(), frozen);
  scheduler.Stop();
}

TEST(JobSchedulerTest, StopCancelsPendingAndFinishesRunning) {
  JobScheduler scheduler;
  scheduler.Start();
  Gate gate;
  std::atomic<bool> finished{false};
  scheduler.Submit("a", "slow", [&] {
    gate.Wait();
    finished = true;
    return Status::OK();
  });
  std::atomic<int> runs{0};
  uint64_t pending = scheduler.Submit("b", "flush", [&] {
    ++runs;
    return Status::OK();
  });
  EXPECT_TRUE(Eventually([&] { return scheduler.queue_depth() <= 1; }));
  std::thread stopper([&] { scheduler.Stop(); });
  std::this_thread::sleep_for(milliseconds(5));
  gate.Release();
  stopper.join();
  EXPECT_TRUE(finished.load());  // the running job completed
  EXPECT_FALSE(scheduler.running());
  bool cancelled = false;
  for (const JobInfo& info : scheduler.ListJobs()) {
    if (info.id == pending) cancelled = info.state == JobState::kCancelled;
  }
  // The pending job either ran before Stop got the lock or was cancelled.
  EXPECT_TRUE(cancelled || runs.load() == 1);
  // Restart works after Stop.
  scheduler.Start();
  std::atomic<int> again{0};
  scheduler.Submit("c", "flush", [&] {
    ++again;
    return Status::OK();
  });
  scheduler.Drain();
  EXPECT_EQ(again.load(), 1);
  scheduler.Stop();
}

TEST(JobSchedulerTest, HistoryIsBounded) {
  JobScheduler scheduler(JobScheduler::Options{.history_limit = 4});
  scheduler.Start();
  for (int i = 0; i < 20; ++i) {
    scheduler.Submit("k", "flush", [] { return Status::OK(); });
    scheduler.Drain();
  }
  size_t finished = 0;
  for (const JobInfo& info : scheduler.ListJobs()) {
    if (info.state == JobState::kDone) ++finished;
  }
  EXPECT_LE(finished, 4u);
  scheduler.Stop();
}

// Stress: many threads submitting, cancelling and quiescing across a small
// key space while workers churn. Run under tsan/asan, this is the data-race
// and shutdown-safety check for the scheduler; the invariant asserted here
// is per-key mutual exclusion.
TEST(JobSchedulerStress, ConcurrentSubmittersAndQuiescers) {
  JobScheduler scheduler(JobScheduler::Options{.num_workers = 4});
  scheduler.Start();
  constexpr int kKeys = 6;
  std::atomic<int> active[kKeys] = {};
  std::atomic<bool> overlap{false};
  std::atomic<int> total_runs{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1234 + static_cast<uint64_t>(p));
      for (int i = 0; i < 200; ++i) {
        int k = static_cast<int>(rng.Uniform(0, kKeys - 1));
        std::string key = "key-" + std::to_string(k);
        uint64_t id = scheduler.Submit(key, "work", [&, k] {
          if (++active[k] != 1) overlap = true;
          --active[k];
          ++total_runs;
          return Status::OK();
        });
        if (rng.Bernoulli(0.1)) scheduler.Cancel(id);
        if (rng.Bernoulli(0.02)) scheduler.Quiesce(key);
        if (rng.Bernoulli(0.05)) (void)scheduler.ListJobs();
      }
    });
  }
  std::atomic<int> ticks{0};
  scheduler.SubmitPeriodic("", "tick", milliseconds(1), [&] {
    ++ticks;
    return Status::OK();
  });
  for (std::thread& t : producers) t.join();
  scheduler.Drain();
  scheduler.Stop();
  EXPECT_FALSE(overlap.load());
  EXPECT_GT(total_runs.load(), 0);
}

}  // namespace
}  // namespace tsviz::bg
