#include "encoding/rle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "encoding/page.h"
#include "test_util.h"

namespace tsviz {
namespace {

void ExpectRoundTrip(const std::vector<Value>& values) {
  std::string buf;
  ASSERT_OK(EncodeRle(values, &buf));
  std::vector<Value> decoded;
  ASSERT_OK(DecodeRle(buf, values.size(), &decoded));
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::isnan(values[i])) {
      EXPECT_TRUE(std::isnan(decoded[i]));
    } else {
      EXPECT_EQ(decoded[i], values[i]) << i;
    }
  }
}

TEST(RleTest, EmptyAndSingle) {
  ExpectRoundTrip({});
  ExpectRoundTrip({42.0});
}

TEST(RleTest, ConstantSeriesIsTiny) {
  std::vector<Value> values(100000, 7.25);
  std::string buf;
  ASSERT_OK(EncodeRle(values, &buf));
  EXPECT_LT(buf.size(), 16u);  // one run: varint length + 8 value bytes
  ExpectRoundTrip(values);
}

TEST(RleTest, AlternatingValuesDegradeGracefully) {
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 2);
  std::string buf;
  ASSERT_OK(EncodeRle(values, &buf));
  EXPECT_LE(buf.size(), 1000u * 9);
  ExpectRoundTrip(values);
}

TEST(RleTest, DistinguishesSignedZerosAndNaN) {
  // RLE compares bit patterns: +0.0 and -0.0 are distinct runs, and NaN
  // round-trips bit-exactly.
  ExpectRoundTrip({0.0, -0.0, 0.0, std::numeric_limits<double>::quiet_NaN(),
                   std::numeric_limits<double>::infinity()});
}

TEST(RleTest, RandomRunsRoundTrip) {
  Rng rng(31);
  for (int round = 0; round < 10; ++round) {
    std::vector<Value> values;
    while (values.size() < 2000) {
      double v = std::round(rng.Gaussian(0, 10));
      size_t run = static_cast<size_t>(rng.Uniform(1, 50));
      values.insert(values.end(), run, v);
    }
    ExpectRoundTrip(values);
  }
}

TEST(RleTest, CorruptRunLengthRejected) {
  std::string buf;
  ASSERT_OK(EncodeRle({1.0, 1.0, 1.0}, &buf));
  std::vector<Value> decoded;
  // Claiming fewer values than the run holds must fail, not overflow.
  EXPECT_EQ(DecodeRle(buf, 2, &decoded).code(), StatusCode::kCorruption);
  // Truncated input fails too.
  EXPECT_FALSE(
      DecodeRle(std::string_view(buf).substr(0, 3), 3, &decoded).ok());
}

TEST(RlePageTest, PageRoundTripWithRleValues) {
  std::vector<Point> points;
  for (int i = 0; i < 300; ++i) {
    points.push_back(Point{i * 10, static_cast<double>(i / 60)});
  }
  std::string blob;
  PageInfo info;
  ASSERT_OK(EncodePage(points.data(), points.size(), TsCodec::kTs2Diff,
                       ValueCodec::kRle, &blob, &info));
  std::vector<Point> decoded;
  ASSERT_OK(DecodePage(blob, &decoded));
  EXPECT_EQ(decoded, points);
  // 5 runs of 60 + compact timestamps: far below plain encoding.
  EXPECT_LT(blob.size(), 500u);
}

}  // namespace
}  // namespace tsviz
