#include "db/catalog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "obs/metrics.h"
#include "sql/executor.h"
#include "storage/store.h"
#include "test_util.h"

namespace tsviz {
namespace {

StoreConfig SmallStore(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 50;
  config.memtable_flush_threshold = 50;
  return config;
}

DatabaseConfig TestConfig(const std::string& root, size_t shards = 0) {
  DatabaseConfig config;
  config.root_dir = root;
  config.series_defaults.points_per_chunk = 50;
  config.series_defaults.memtable_flush_threshold = 50;
  config.catalog_shards = shards;
  return config;
}

// --- SeriesCatalog unit tests -------------------------------------------

TEST(SeriesCatalogTest, ShardCountClampsAndDefaults) {
  EXPECT_EQ(SeriesCatalog(4).num_shards(), 4u);
  EXPECT_EQ(SeriesCatalog(1).num_shards(), 1u);
  EXPECT_EQ(SeriesCatalog(5000).num_shards(), 1024u);
  EXPECT_EQ(SeriesCatalog(0).num_shards(), DefaultCatalogShards());
}

TEST(SeriesCatalogTest, RoutingIsDeterministicAndInRange) {
  SeriesCatalog catalog(8);
  for (int i = 0; i < 64; ++i) {
    std::string name = "series_" + std::to_string(i);
    size_t shard = catalog.ShardOf(name);
    EXPECT_LT(shard, 8u);
    EXPECT_EQ(shard, catalog.ShardOf(name)) << name;
  }
  // A single shard routes everything to shard 0.
  SeriesCatalog single(1);
  EXPECT_EQ(single.ShardOf("anything"), 0u);
}

TEST(SeriesCatalogTest, FindOrCreateRemoveAndListings) {
  TempDir dir;
  SeriesCatalog catalog(4);
  EXPECT_EQ(catalog.Find("a"), nullptr);
  EXPECT_EQ(catalog.size(), 0u);

  auto open = [&](const std::string& name) {
    return [&, name]() { return TsStore::Open(SmallStore(dir.path() + "/" + name)); };
  };

  bool created = false;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<TsStore> a,
                       catalog.FindOrCreate("a", open("a"), &created));
  EXPECT_TRUE(created);
  ASSERT_NE(a, nullptr);

  // Second create finds the existing store instead of building a new one.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<TsStore> again,
                       catalog.FindOrCreate("a", open("a"), &created));
  EXPECT_FALSE(created);
  EXPECT_EQ(again.get(), a.get());
  EXPECT_EQ(catalog.Find("a").get(), a.get());

  ASSERT_OK(catalog.FindOrCreate("b", open("b")).status());
  ASSERT_OK(catalog.FindOrCreate("c", open("c")).status());
  EXPECT_EQ(catalog.size(), 3u);
  EXPECT_EQ(catalog.ListNames(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(catalog.ListAll().size(), 3u);

  std::shared_ptr<TsStore> removed = catalog.Remove("b");
  EXPECT_NE(removed, nullptr);
  EXPECT_EQ(catalog.Remove("b"), nullptr);
  EXPECT_EQ(catalog.ListNames(), (std::vector<std::string>{"a", "c"}));
}

TEST(SeriesCatalogTest, ListShardPartitionsTheNamespace) {
  TempDir dir;
  SeriesCatalog catalog(4);
  std::set<std::string> names;
  for (int i = 0; i < 32; ++i) {
    std::string name = "s" + std::to_string(i);
    names.insert(name);
    ASSERT_OK(catalog
                  .FindOrCreate(name,
                                [&] {
                                  return TsStore::Open(
                                      SmallStore(dir.path() + "/" + name));
                                })
                  .status());
  }
  // The per-shard views are disjoint, each name lives in the shard its hash
  // routes to, and their union is exactly the full listing.
  std::set<std::string> merged;
  for (size_t shard = 0; shard < catalog.num_shards(); ++shard) {
    for (const auto& [name, store] : catalog.ListShard(shard)) {
      EXPECT_EQ(catalog.ShardOf(name), shard) << name;
      EXPECT_TRUE(merged.insert(name).second) << name << " listed twice";
    }
  }
  EXPECT_EQ(merged, names);
}

TEST(SeriesCatalogTest, LockWaitHistogramCountsAcquisitions) {
  obs::Histogram& wait = obs::GetHistogram("catalog_lock_wait_millis");
  uint64_t before = wait.count();
  SeriesCatalog catalog(2);
  catalog.Find("nope");
  catalog.ListNames();
  EXPECT_GT(wait.count(), before);
}

// --- Database-level sharding --------------------------------------------

TEST(CatalogShardingTest, ConfigShardCountIsHonored) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path(), 3)));
  EXPECT_EQ(db->catalog_shards(), 3u);
  EXPECT_EQ(db->NumMaintenanceShards(), 3u);
}

TEST(CatalogShardingTest, SetCatalogShardsAppliesAtNextOpen) {
  size_t original = DefaultCatalogShards();
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  EXPECT_EQ(db->catalog_shards(), original);

  ASSERT_OK(db->ApplySetting("catalog_shards", 4));
  // The live catalog cannot re-hash: the knob changes the process default,
  // consumed at the next Open.
  EXPECT_EQ(db->catalog_shards(), original);
  EXPECT_EQ(DefaultCatalogShards(), 4u);

  TempDir dir2;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db2,
                       Database::Open(TestConfig(dir2.path())));
  EXPECT_EQ(db2->catalog_shards(), 4u);

  SetDefaultCatalogShards(original);
}

TEST(CatalogShardingTest, DiscoveryRepopulatesAllShards) {
  TempDir dir;
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) names.push_back("m" + std::to_string(i));
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         Database::Open(TestConfig(dir.path(), 4)));
    for (const auto& name : names) ASSERT_OK(db->Write(name, 10, 1.0));
    ASSERT_OK(db->FlushAll());
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path(), 4)));
  std::vector<std::string> listed = db->ListSeries();
  std::vector<std::string> expected = names;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(listed, expected);
  for (const auto& name : names) {
    ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetSeries(name));
    EXPECT_EQ(store->TotalStoredPoints(), 1u);
  }
}

// The acceptance bar for correctness of the refactor: a 1-shard and a
// 16-shard database fed identical data answer identical M4 queries,
// bit-for-bit.
TEST(CatalogShardingTest, SingleShardAndManyShardM4AreBitIdentical) {
  TempDir dir1, dir16;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db1,
                       Database::Open(TestConfig(dir1.path(), 1)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db16,
                       Database::Open(TestConfig(dir16.path(), 16)));

  Rng rng(20260808);
  for (int s = 0; s < 8; ++s) {
    std::string name = "sensor_" + std::to_string(s);
    for (int i = 0; i < 230; ++i) {
      Timestamp t = static_cast<Timestamp>(i) * 10 + (s % 3);
      Value v = static_cast<Value>(rng.UniformReal(-50.0, 50.0));
      ASSERT_OK(db1->Write(name, t, v));
      ASSERT_OK(db16->Write(name, t, v));
    }
  }

  ASSERT_OK(db1->FlushAll());
  ASSERT_OK(db16->FlushAll());
  for (int s = 0; s < 8; ++s) {
    std::string name = "sensor_" + std::to_string(s);
    for (int64_t w : {1, 7, 31}) {
      M4Query query;
      query.tqs = 0;
      query.tqe = 2300;
      query.w = w;
      ASSERT_OK_AND_ASSIGN(M4Result r1, db1->QueryM4(name, query, nullptr));
      ASSERT_OK_AND_ASSIGN(M4Result r16, db16->QueryM4(name, query, nullptr));
      ASSERT_EQ(r1.size(), r16.size()) << name << " w=" << w;
      for (size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].has_data, r16[i].has_data);
        if (!r1[i].has_data) continue;
        EXPECT_EQ(r1[i].first.t, r16[i].first.t);
        EXPECT_EQ(r1[i].first.v, r16[i].first.v);
        EXPECT_EQ(r1[i].last.t, r16[i].last.t);
        EXPECT_EQ(r1[i].last.v, r16[i].last.v);
        EXPECT_EQ(r1[i].bottom.t, r16[i].bottom.t);
        EXPECT_EQ(r1[i].bottom.v, r16[i].bottom.v);
        EXPECT_EQ(r1[i].top.t, r16[i].top.t);
        EXPECT_EQ(r1[i].top.v, r16[i].top.v);
      }
    }
  }
}

// --- Concurrency (run under tsan via the `catalog` ctest label) ----------

// Creates, drops, listings, lookups, writes and maintenance ticks hammer the
// catalog from six threads at once. Drops run against their own name set so
// a raw TsStore* handed to a writer can never be freed underneath it (the
// same contract the pre-sharding Database had).
TEST(CatalogShardingTest, ConcurrentMutationHammer) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path(), 8)));
  constexpr int kIters = 200;
  std::atomic<bool> failed{false};

  auto writer = [&](int id) {
    for (int i = 0; i < kIters; ++i) {
      std::string name = "w" + std::to_string((id * 7 + i) % 16);
      if (!db->Write(name, i * 10 + id, double(i)).ok()) failed = true;
    }
  };
  // Each churner drops from its own name set: recreating a series while
  // another thread's DropSeries is still removing its files has never been
  // part of the catalog contract (file removal runs outside all locks, as
  // it did before sharding), so concurrent create/drop races only across
  // *different* names here.
  auto churner = [&](int id) {
    for (int i = 0; i < kIters; ++i) {
      std::string name =
          "d" + std::to_string(id) + "x" + std::to_string(i % 8);
      if (!db->Write(name, i, 1.0).ok()) failed = true;
      Status drop = db->DropSeries(name);
      if (!drop.ok() && drop.code() != StatusCode::kNotFound) failed = true;
    }
  };
  auto lister = [&] {
    for (int i = 0; i < kIters; ++i) {
      (void)db->ListSeries();
      (void)db->GetSeriesShared("w" + std::to_string(i % 16));
    }
  };
  auto ticker = [&] {
    for (int i = 0; i < kIters / 4; ++i) db->maintenance().Tick();
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer, 0);
  threads.emplace_back(writer, 1);
  threads.emplace_back(churner, 0);
  threads.emplace_back(churner, 1);
  threads.emplace_back(lister);
  threads.emplace_back(ticker);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  // Every writer series survived with its points intact.
  for (int k = 0; k < 16; ++k) {
    ASSERT_OK_AND_ASSIGN(
        std::shared_ptr<TsStore> store,
        db->GetSeriesShared("w" + std::to_string(k)));
    EXPECT_GT(store->TotalStoredPoints() + store->memtable_size(), 0u);
  }
}

// --- Write batching ------------------------------------------------------

// The issue's acceptance bar: a batched INSERT of 1000 points performs one
// store-lock acquisition and one WAL write (1000 logical records, one
// write(2)), not 1000 of each.
TEST(WriteBatchTest, ThousandPointInsertTakesOneLockAndOneWalWrite) {
  TempDir dir;
  DatabaseConfig config = TestConfig(dir.path(), 4);
  // Keep the whole batch in the memtable: a mid-batch flush would add
  // unrelated I/O and muddy the counter deltas below.
  config.series_defaults.memtable_flush_threshold = 5000;
  config.series_defaults.points_per_chunk = 5000;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db, Database::Open(config));

  std::string statement = "INSERT INTO batched VALUES ";
  for (int i = 0; i < 1000; ++i) {
    if (i) statement += ", ";
    statement += "(" + std::to_string(i * 10) + ", " + std::to_string(i) + ")";
  }

  obs::Counter& locks = obs::GetCounter("store_write_lock_acquisitions_total");
  obs::Counter& wal_writes = obs::GetCounter("wal_physical_writes_total");
  obs::Counter& wal_appends = obs::GetCounter("wal_appends_total");
  obs::Counter& batches = obs::GetCounter("batch_writes_total");
  obs::Counter& batch_points = obs::GetCounter("batch_points_total");
  uint64_t locks0 = locks.value();
  uint64_t wal_writes0 = wal_writes.value();
  uint64_t wal_appends0 = wal_appends.value();
  uint64_t batches0 = batches.value();
  uint64_t batch_points0 = batch_points.value();

  ASSERT_OK(sql::ExecuteQuery(db.get(), statement).status());

  EXPECT_EQ(locks.value() - locks0, 1u);
  EXPECT_EQ(wal_writes.value() - wal_writes0, 1u);
  EXPECT_EQ(wal_appends.value() - wal_appends0, 1000u);
  EXPECT_EQ(batches.value() - batches0, 1u);
  EXPECT_EQ(batch_points.value() - batch_points0, 1000u);

  ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetSeries("batched"));
  EXPECT_EQ(store->memtable_size(), 1000u);
}

TEST(WriteBatchTest, BatchSurvivesReopenThroughWal) {
  TempDir dir;
  DatabaseConfig config = TestConfig(dir.path());
  config.series_defaults.memtable_flush_threshold = 5000;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db, Database::Open(config));
    std::vector<Point> points = MakeLinearSeries(300);
    ASSERT_OK(db->WriteBatch("walled", points));
    // No flush: reopen must replay the batch from the WAL.
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db, Database::Open(config));
  ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetSeries("walled"));
  EXPECT_EQ(store->memtable_size(), 300u);
  // Queries read flushed chunks; flush the replayed memtable to check the
  // recovered data end to end.
  ASSERT_OK(db->FlushAll());
  M4Query query;
  query.tqs = 0;
  query.tqe = 3000;
  query.w = 1;
  ASSERT_OK_AND_ASSIGN(M4Result result, db->QueryM4("walled", query, nullptr));
  ASSERT_EQ(result.size(), 1u);
  ASSERT_TRUE(result[0].has_data);
  EXPECT_EQ(result[0].first.t, 0);
  EXPECT_EQ(result[0].last.t, 2990);
  EXPECT_EQ(result[0].top.v, 299.0);
}

TEST(WriteBatchTest, RejectsNonFiniteValuesAtomically) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  std::vector<Point> points = MakeLinearSeries(10);
  points[7].v = std::numeric_limits<Value>::infinity();
  EXPECT_EQ(db->WriteBatch("poisoned", points).code(),
            StatusCode::kInvalidArgument);
  // All-or-nothing: none of the batch landed.
  ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetSeries("poisoned"));
  EXPECT_EQ(store->memtable_size() + store->TotalStoredPoints(), 0u);
}

}  // namespace
}  // namespace tsviz
