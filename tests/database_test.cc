#include "db/database.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "obs/recorder.h"
#include "storage/page_cache.h"
#include "storage/quarantine.h"
#include "test_util.h"

namespace tsviz {
namespace {

DatabaseConfig TestConfig(const std::string& root) {
  DatabaseConfig config;
  config.root_dir = root;
  config.series_defaults.points_per_chunk = 50;
  config.series_defaults.memtable_flush_threshold = 50;
  return config;
}

TEST(SeriesNameTest, Validation) {
  EXPECT_TRUE(IsValidSeriesName("root.sg1.d1.s1"));
  EXPECT_TRUE(IsValidSeriesName("sensor_42-b"));
  EXPECT_FALSE(IsValidSeriesName(""));
  EXPECT_FALSE(IsValidSeriesName("has space"));
  EXPECT_FALSE(IsValidSeriesName("slash/attack"));
  EXPECT_FALSE(IsValidSeriesName(".."));
  EXPECT_FALSE(IsValidSeriesName(std::string(200, 'a')));
}

TEST(DatabaseTest, OpenRequiresRoot) {
  EXPECT_EQ(Database::Open(DatabaseConfig{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, CreateListAndIsolateSeries) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  EXPECT_TRUE(db->ListSeries().empty());

  ASSERT_OK(db->Write("temp", 10, 21.5));
  ASSERT_OK(db->Write("pressure", 10, 1013.0));
  ASSERT_OK(db->Write("temp", 20, 22.0));
  EXPECT_EQ(db->ListSeries(), (std::vector<std::string>{"pressure", "temp"}));

  ASSERT_OK(db->FlushAll());
  ASSERT_OK_AND_ASSIGN(TsStore * temp, db->GetSeries("temp"));
  ASSERT_OK_AND_ASSIGN(TsStore * pressure, db->GetSeries("pressure"));
  EXPECT_EQ(temp->TotalStoredPoints(), 2u);
  EXPECT_EQ(pressure->TotalStoredPoints(), 1u);
}

TEST(DatabaseTest, RejectsBadNames) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  EXPECT_EQ(db->Write("../escape", 1, 1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db->GetOrCreateSeries("a/b").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, GetMissingSeriesIsNotFound) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  EXPECT_EQ(db->GetSeries("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db->DeleteRange("ghost", TimeRange(0, 1)).code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, DiscoveryOnReopen) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         Database::Open(TestConfig(dir.path())));
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(db->Write("engine.rpm", i * 10, i * 1.0));
    }
    ASSERT_OK(db->FlushAll());
    ASSERT_OK(db->DeleteRange("engine.rpm", TimeRange(0, 95)));
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  EXPECT_EQ(db->ListSeries(), (std::vector<std::string>{"engine.rpm"}));
  ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetSeries("engine.rpm"));
  EXPECT_EQ(store->deletes().size(), 1u);
  EXPECT_EQ(store->TotalStoredPoints(), 100u);
}

TEST(DatabaseTest, DropSeriesRemovesData) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         Database::Open(TestConfig(dir.path())));
    ASSERT_OK(db->Write("doomed", 1, 1.0));
    ASSERT_OK(db->FlushAll());
    ASSERT_OK(db->DropSeries("doomed"));
    EXPECT_TRUE(db->ListSeries().empty());
    EXPECT_EQ(db->DropSeries("doomed").code(), StatusCode::kNotFound);
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  EXPECT_TRUE(db->ListSeries().empty());
}

TEST(DatabaseTest, ApplySettingRejectsUnknownKnobsListingValidOnes) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  Status status = db->ApplySetting("autoflush_byts", 1024);  // typo
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The error names the offender and enumerates every valid knob.
  EXPECT_NE(status.ToString().find("autoflush_byts"), std::string::npos);
  for (const char* knob :
       {"autoflush_bytes", "compaction_files", "page_cache_bytes",
        "parallelism", "partition_interval_ms", "result_cache_capacity",
        "ttl_ms"}) {
    EXPECT_NE(status.ToString().find(knob), std::string::npos) << knob;
    EXPECT_OK(db->ApplySetting(knob, 1));
    // Zero, negative, and fractional values are all rejected, and the
    // error repeats the knob catalog.
    for (double bad : {0.0, -1.0, 1.5}) {
      Status rejected = db->ApplySetting(knob, bad);
      EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument)
          << knob << " = " << bad;
      EXPECT_NE(rejected.ToString().find("valid knobs"), std::string::npos);
    }
  }
}

TEST(DatabaseTest, DurabilityAndToleranceKnobs) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  ASSERT_OK(db->Write("s", 1, 1.0));
  ASSERT_OK_AND_ASSIGN(TsStore * existing, db->GetSeries("s"));
  // durable_fsync accepts 0 (off) and reaches both the open store and the
  // defaults new series inherit.
  ASSERT_OK(db->ApplySetting("durable_fsync", 0));
  EXPECT_FALSE(existing->durable_fsync());
  ASSERT_OK(db->Write("s2", 1, 1.0));
  ASSERT_OK_AND_ASSIGN(TsStore * created, db->GetSeries("s2"));
  EXPECT_FALSE(created->durable_fsync());
  ASSERT_OK(db->ApplySetting("durable_fsync", 1));
  EXPECT_TRUE(existing->durable_fsync());
  EXPECT_FALSE(db->ApplySetting("durable_fsync", -1).ok());
  // faultfs_* knobs accept 0 and reject unknown field names.
  ASSERT_OK(db->ApplySetting("faultfs_eio_every", 0));
  Status status = db->ApplySetting("faultfs_nope", 1);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("valid knobs"), std::string::npos);
  // read_tolerance is word-valued: numbers are rejected, words apply.
  status = db->ApplySetting("read_tolerance", 1);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("valid knobs"), std::string::npos);
  ASSERT_OK(db->ApplySetting("read_tolerance", std::string("strict")));
  EXPECT_EQ(GetReadTolerance(), ReadTolerance::kStrict);
  ASSERT_OK(db->ApplySetting("read_tolerance", std::string("degrade")));
  EXPECT_EQ(GetReadTolerance(), ReadTolerance::kDegrade);
  status = db->ApplySetting("ttl_ms", std::string("forever"));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("valid knobs"), std::string::npos);
}

TEST(DatabaseTest, PartitionIntervalSettingAppliesToNewSeries) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  ASSERT_OK(db->Write("flat", 1, 1.0));
  ASSERT_OK(db->ApplySetting("partition_interval_ms", 1000));
  EXPECT_EQ(db->partition_interval_ms(), 1000);
  ASSERT_OK(db->Write("parted", 2500, 1.0));
  ASSERT_OK_AND_ASSIGN(TsStore * flat, db->GetSeries("flat"));
  ASSERT_OK_AND_ASSIGN(TsStore * parted, db->GetSeries("parted"));
  // Existing series keep their layout; new ones pick up the interval.
  EXPECT_EQ(flat->partition_interval(), 0);
  EXPECT_EQ(parted->partition_interval(), 1000);
  ASSERT_OK(parted->Flush());
  EXPECT_TRUE(std::filesystem::exists(dir.path() + "/parted/p2"));
}

TEST(DatabaseTest, SettingsReachTheMaintenancePolicy) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  ASSERT_OK(db->ApplySetting("autoflush_bytes", 4096));
  ASSERT_OK(db->ApplySetting("compaction_files", 5));
  ASSERT_OK(db->ApplySetting("ttl_ms", 86400000));
  EXPECT_EQ(db->maintenance().memtable_flush_bytes(), 4096u);
  EXPECT_EQ(db->maintenance().compaction_files(), 5u);
  EXPECT_EQ(db->maintenance().ttl(), 86400000);
}

// Drift protection for the knob catalog. The TSVIZ_SET_KNOBS X-macro is the
// single source of truth: every name it lists must be accepted by
// ApplySetting (a knob listed but missing its handler falls through to
// kInternal and fails here), and the error-message catalog must be exactly
// the ", "-join of the name table. The inverse drift — a knob handled in
// ApplySetting but absent from the list — is impossible by construction,
// because membership is checked before any handler runs.
TEST(DatabaseTest, KnobCatalogHasNoDrift) {
  // Several knobs mutate process-wide state; snapshot it for restoration so
  // this test leaves no residue in later tests (faultfs_* especially: an
  // eio_every=1 left armed would fail every subsequent I/O in the binary).
  size_t shards_before = DefaultCatalogShards();
  size_t page_cache_before = SharedPageCache::Instance().capacity_bytes();
  ReadTolerance tolerance_before = GetReadTolerance();
  obs::FlightRecorder& recorder = obs::FlightRecorder::Instance();
  uint64_t sample_before = recorder.trace_sample_every();
  double slow_before = recorder.slow_query_millis();

  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  for (size_t i = 0; i < kNumSetKnobs; ++i) {
    std::string knob = kSetKnobNames[i];
    // Word-valued and role-changing knobs get their no-op spellings:
    // read_tolerance takes a word, replica_of = off and
    // repl_listen_port = 0 disable roles that were never enabled (binding
    // a relay port or dialing a primary is replication's own test's job).
    Status status;
    if (knob == "read_tolerance") {
      status = db->ApplySetting(knob, std::string("degrade"));
    } else if (knob == "replica_of") {
      status = db->ApplySetting(knob, std::string("off"));
    } else if (knob == "repl_listen_port") {
      status = db->ApplySetting(knob, 0);
    } else {
      status = db->ApplySetting(knob, 1);
    }
    EXPECT_TRUE(status.ok()) << knob << ": " << status.ToString();
  }

  std::string joined;
  for (size_t i = 0; i < kNumSetKnobs; ++i) {
    if (i) joined += ", ";
    joined += kSetKnobNames[i];
  }
  EXPECT_EQ(std::string(kValidSetKnobs), joined);

  // Restore process-wide state.
  for (const char* knob :
       {"faultfs_seed", "faultfs_eio_every", "faultfs_short_read_every",
        "faultfs_torn_append_every", "faultfs_fsync_fail_every"}) {
    ASSERT_OK(db->ApplySetting(knob, 0));
  }
  SetDefaultCatalogShards(shards_before);
  SharedPageCache::Instance().set_capacity_bytes(page_cache_before);
  SetReadTolerance(tolerance_before);
  recorder.set_trace_sample_every(sample_before);
  recorder.set_slow_query_millis(slow_before);
  recorder.set_capacity_bytes(obs::FlightRecorder::kDefaultCapacityBytes);
}

TEST(DatabaseTest, QueryM4PerSeries) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(TestConfig(dir.path())));
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(db->Write("a", i, i * 1.0));
    ASSERT_OK(db->Write("b", i, -i * 1.0));
  }
  ASSERT_OK(db->FlushAll());

  M4Query query{0, 100, 4};
  QueryStats stats;
  ASSERT_OK_AND_ASSIGN(M4Result a_rows, db->QueryM4("a", query, &stats));
  ASSERT_OK_AND_ASSIGN(M4Result b_rows, db->QueryM4("b", query, nullptr));
  ASSERT_EQ(a_rows.size(), 4u);
  EXPECT_EQ(a_rows[0].top.v, 24.0);
  EXPECT_EQ(b_rows[0].bottom.v, -24.0);
  EXPECT_EQ(db->QueryM4("c", query, nullptr).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace tsviz
