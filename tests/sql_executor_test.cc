#include "sql/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>

#include "common/env.h"
#include "common/random.h"
#include "m4/m4_udf.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "storage/quarantine.h"
#include "test_util.h"

namespace tsviz::sql {
namespace {

class SqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseConfig config;
    config.root_dir = dir_.path();
    config.series_defaults.points_per_chunk = 40;
    config.series_defaults.memtable_flush_threshold = 40;
    auto db = Database::Open(config);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    // 200 points: t = 0,10,...,1990; v = t/10 except a dip at t=500.
    for (int i = 0; i < 200; ++i) {
      double v = i == 50 ? -100.0 : i;
      ASSERT_OK(db_->Write("s1", i * 10, v));
    }
    ASSERT_OK(db_->FlushAll());
  }

  ResultSet MustQuery(const std::string& statement) {
    auto result = ExecuteQuery(db_.get(), statement, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << " for "
                             << statement;
    return result.ok() ? *result : ResultSet();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(SqlExecutorTest, RawSelectReturnsMergedPoints) {
  ResultSet result =
      MustQuery("SELECT v FROM s1 WHERE time >= 100 AND time < 150");
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"time", "value"}));
  ASSERT_EQ(result.num_rows(), 5u);
  EXPECT_EQ(result.rows()[0][0], ResultSet::Cell(int64_t{100}));
  EXPECT_EQ(result.rows()[0][1], ResultSet::Cell(10.0));
}

TEST_F(SqlExecutorTest, M4ShorthandMatchesOperator) {
  ResultSet result = MustQuery(
      "SELECT M4(v) FROM s1 WHERE time >= 0 AND time < 2000 "
      "GROUP BY SPANS(4)");
  ASSERT_EQ(result.columns().size(), 9u);  // span_start + 8 M4 columns
  ASSERT_EQ(result.num_rows(), 4u);

  auto store = db_->GetSeries("s1");
  ASSERT_TRUE(store.ok());
  ASSERT_OK_AND_ASSIGN(M4Result m4,
                       RunM4Udf(**store, M4Query{0, 2000, 4}, nullptr));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.rows()[i][1], ResultSet::Cell(m4[i].first.t));
    EXPECT_EQ(result.rows()[i][4], ResultSet::Cell(m4[i].last.v));
    EXPECT_EQ(result.rows()[i][6], ResultSet::Cell(m4[i].bottom.v));
    EXPECT_EQ(result.rows()[i][8], ResultSet::Cell(m4[i].top.v));
  }
  // The dip at t=500 is span 1's bottom.
  EXPECT_EQ(result.rows()[1][6], ResultSet::Cell(-100.0));
}

TEST_F(SqlExecutorTest, MixedAggregatesJoinOnSpan) {
  ResultSet result = MustQuery(
      "SELECT MIN_VALUE(v), MAX_VALUE(v), COUNT(v), AVG(v) FROM s1 "
      "WHERE time >= 0 AND time < 2000 GROUP BY SPANS(2)");
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"span_start", "BOTTOM_VALUE(v)",
                                      "TOP_VALUE(v)", "COUNT(v)", "AVG(v)"}));
  ASSERT_EQ(result.num_rows(), 2u);
  EXPECT_EQ(result.rows()[0][1], ResultSet::Cell(-100.0));
  EXPECT_EQ(result.rows()[0][2], ResultSet::Cell(99.0));
  EXPECT_EQ(result.rows()[0][3], ResultSet::Cell(int64_t{100}));
  EXPECT_EQ(result.rows()[1][3], ResultSet::Cell(int64_t{100}));
  // avg of 100..199 = 149.5.
  EXPECT_EQ(result.rows()[1][4], ResultSet::Cell(149.5));
}

TEST_F(SqlExecutorTest, DefaultsToFullRangeAndOneSpan) {
  ResultSet result = MustQuery("SELECT COUNT(v) FROM s1");
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][1], ResultSet::Cell(int64_t{200}));
}

TEST_F(SqlExecutorTest, EmptySpansAreNull) {
  ASSERT_OK(db_->DeleteRange("s1", TimeRange(0, 990)));
  ResultSet result = MustQuery(
      "SELECT MIN(v), COUNT(v) FROM s1 WHERE time >= 0 AND time < 2000 "
      "GROUP BY SPANS(2)");
  ASSERT_EQ(result.num_rows(), 2u);
  EXPECT_EQ(result.rows()[0][1], ResultSet::Cell());  // null min
  EXPECT_EQ(result.rows()[0][2], ResultSet::Cell(int64_t{0}));
  EXPECT_EQ(result.rows()[1][2], ResultSet::Cell(int64_t{100}));
}

TEST_F(SqlExecutorTest, TimeEqualitySelectsOnePoint) {
  ResultSet result = MustQuery("SELECT v FROM s1 WHERE time = 170");
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][1], ResultSet::Cell(17.0));
}

TEST_F(SqlExecutorTest, SemanticErrors) {
  EXPECT_EQ(ExecuteQuery(db_.get(), "SELECT v FROM nope", nullptr)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(ExecuteQuery(db_.get(),
                            "SELECT v, COUNT(v) FROM s1", nullptr)
                   .ok());  // raw + aggregate mix
  EXPECT_FALSE(ExecuteQuery(db_.get(),
                            "SELECT v FROM s1 GROUP BY SPANS(4)", nullptr)
                   .ok());  // raw + group by
  EXPECT_FALSE(
      ExecuteQuery(db_.get(),
                   "SELECT COUNT(v) FROM s1 WHERE time >= 100 AND time < 50",
                   nullptr)
          .ok());  // empty range
}

TEST_F(SqlExecutorTest, ExplainDescribesThePlanWithoutExecuting) {
  ResultSet result = MustQuery(
      "EXPLAIN SELECT M4(v), COUNT(v) FROM s1 WHERE time >= 0 AND "
      "time < 2000 GROUP BY SPANS(4)");
  EXPECT_EQ(result.columns(), (std::vector<std::string>{"step", "detail"}));
  std::string text = result.ToString();
  EXPECT_NE(text.find("merge-free M4-LSM"), std::string::npos);
  EXPECT_NE(text.find("merged scan"), std::string::npos);
  EXPECT_NE(text.find("s1"), std::string::npos);
  EXPECT_NE(text.find("[0, 2000)"), std::string::npos);
  // chunks_overlapping is reported from metadata (5 chunks of 40 points).
  EXPECT_NE(text.find("chunks_overlapping"), std::string::npos);
}

TEST_F(SqlExecutorTest, ExplainRawPath) {
  ResultSet result = MustQuery("EXPLAIN SELECT v FROM s1");
  EXPECT_NE(result.ToString().find("raw merged points"), std::string::npos);
}

TEST_F(SqlExecutorTest, ValueFilterOnRawSelect) {
  // Values are 0..199 except -100 at t=500.
  ResultSet result =
      MustQuery("SELECT v FROM s1 WHERE value < 0");
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][0], ResultSet::Cell(int64_t{500}));
  ResultSet band = MustQuery(
      "SELECT v FROM s1 WHERE value >= 10 AND value < 12 AND time < 1000");
  EXPECT_EQ(band.num_rows(), 2u);  // v = 10, 11
  ResultSet mirrored = MustQuery("SELECT v FROM s1 WHERE 0 > value");
  EXPECT_EQ(mirrored.num_rows(), 1u);
  // Value filters make no sense for metadata-served aggregates.
  EXPECT_FALSE(ExecuteQuery(db_.get(),
                            "SELECT MIN(v) FROM s1 WHERE value > 0",
                            nullptr)
                   .ok());
}

TEST_F(SqlExecutorTest, LimitTruncatesRows) {
  ResultSet raw = MustQuery("SELECT v FROM s1 LIMIT 7");
  EXPECT_EQ(raw.num_rows(), 7u);
  ResultSet agg = MustQuery(
      "SELECT COUNT(v) FROM s1 GROUP BY SPANS(10) LIMIT 3");
  EXPECT_EQ(agg.num_rows(), 3u);
  ResultSet all = MustQuery("SELECT v FROM s1 LIMIT 100000");
  EXPECT_EQ(all.num_rows(), 200u);
}

TEST_F(SqlExecutorTest, ToStringAndCsvRender) {
  ResultSet result =
      MustQuery("SELECT COUNT(v) FROM s1 GROUP BY SPANS(2)");
  std::string table = result.ToString();
  EXPECT_NE(table.find("span_start"), std::string::npos);
  EXPECT_NE(table.find("COUNT(v)"), std::string::npos);
  std::string csv = result.ToCsv();
  EXPECT_NE(csv.find("span_start,COUNT(v)"), std::string::npos);
}

TEST_F(SqlExecutorTest, ShowMetricsRendersPrometheusText) {
  MustQuery("SELECT COUNT(v) FROM s1");  // generate some read activity
  ResultSet result = MustQuery("SHOW METRICS");
  ASSERT_EQ(result.columns().size(), 1u);
  // The column name starts with '#': the CSV header line is a Prometheus
  // comment, making the whole CSV reply valid text exposition format.
  EXPECT_EQ(result.columns()[0][0], '#');
  std::string csv = result.ToCsv();
  EXPECT_NE(csv.find("# TYPE"), std::string::npos);
  EXPECT_NE(csv.find("read_metadata_reads_total"), std::string::npos);
  EXPECT_NE(csv.find("log_warnings_total"), std::string::npos);
  // Every line is a comment or a `name[{labels}] value` sample — never a
  // multi-cell CSV row.
  size_t begin = 0;
  while (begin < csv.size()) {
    size_t end = csv.find('\n', begin);
    if (end == std::string::npos) end = csv.size();
    std::string line = csv.substr(begin, end - begin);
    begin = end + 1;
    EXPECT_EQ(line.find(','), std::string::npos) << line;
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
  }
  EXPECT_FALSE(ExecuteQuery(db_.get(), "SHOW TABLES", nullptr).ok());
}

TEST_F(SqlExecutorTest, ExplainAnalyzeReturnsTraceTreeAndStats) {
  QueryStats stats;
  ASSERT_OK_AND_ASSIGN(
      ResultSet result,
      ExecuteQuery(db_.get(),
                   "EXPLAIN ANALYZE SELECT M4(v) FROM s1 WHERE time >= 0 "
                   "AND time < 2000 GROUP BY SPANS(4)",
                   &stats));
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"node", "millis", "calls"}));
  ASSERT_GT(result.num_rows(), 0u);
  EXPECT_EQ(result.rows()[0][0], ResultSet::Cell(std::string("query")));

  std::string csv = result.ToCsv();
  EXPECT_NE(csv.find("m4_lsm"), std::string::npos);
  EXPECT_NE(csv.find("metadata_read"), std::string::npos);
  EXPECT_NE(csv.find("solve_first"), std::string::npos);
  EXPECT_NE(csv.find("rows_returned,4,null"), std::string::npos);
  // The stat rows come from the same X-macro as QueryStats::ToCsvRow.
  for (const std::string& field : QueryStats::FieldNames()) {
    EXPECT_NE(csv.find("stat:" + field), std::string::npos) << field;
  }
  // A healthy store reports degraded,0: no data was quarantined away.
  EXPECT_NE(csv.find("degraded,0,null"), std::string::npos);
  // The trace and counters also propagate to the caller's QueryStats.
  ASSERT_NE(stats.trace, nullptr);
  EXPECT_GT(stats.trace->TotalMillis(), 0.0);
  EXPECT_GT(stats.metadata_reads, 0u);
  EXPECT_GT(stats.chunks_total, 0u);
}

TEST_F(SqlExecutorTest, ExplainAnalyzeAppliesLimitToTheTracedQuery) {
  ResultSet result = MustQuery(
      "EXPLAIN ANALYZE SELECT COUNT(v) FROM s1 GROUP BY SPANS(10) LIMIT 3");
  std::string csv = result.ToCsv();
  EXPECT_NE(csv.find("rows_returned,3,null"), std::string::npos);
  // The report itself is not truncated to 3 rows.
  EXPECT_GT(result.num_rows(), 3u);
}

// The paper's cost asymmetry, visible per query: on a smooth multi-chunk
// series, merge-free M4-LSM touches an order of magnitude less chunk data
// than the load-everything raw path (the M4-UDF access pattern).
TEST(SqlExplainAnalyzeAsymmetry, M4LsmLoadsFarLessThanFullScan) {
  Rng rng(7);
  TempDir dir;
  DatabaseConfig config;
  config.root_dir = dir.path();
  config.series_defaults.points_per_chunk = 100;
  config.series_defaults.memtable_flush_threshold = 100;
  config.series_defaults.encoding.page_size_points = 25;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db, Database::Open(config));
  // Ballspeed-style smooth random walk, 10000 points -> 100 chunks.
  double v = 0.0;
  for (int i = 0; i < 10000; ++i) {
    v += rng.Gaussian(0, 1.0);
    ASSERT_OK(db->Write("speed", i, v));
  }
  ASSERT_OK(db->FlushAll());

  QueryStats lsm;
  ASSERT_OK_AND_ASSIGN(
      ResultSet lsm_report,
      ExecuteQuery(db.get(),
                   "EXPLAIN ANALYZE SELECT M4(v) FROM speed WHERE "
                   "time >= 0 AND time < 10000 GROUP BY SPANS(4)",
                   &lsm));
  QueryStats raw;
  ASSERT_OK_AND_ASSIGN(
      ResultSet raw_report,
      ExecuteQuery(db.get(),
                   "EXPLAIN ANALYZE SELECT v FROM speed WHERE "
                   "time >= 0 AND time < 10000",
                   &raw));
  EXPECT_NE(raw_report.ToCsv().find("merge_scan"), std::string::npos);

  EXPECT_EQ(raw.chunks_loaded, 100u);  // the full scan loads everything
  EXPECT_GE(raw.chunks_loaded, 10 * std::max<uint64_t>(1, lsm.chunks_loaded))
      << "lsm loaded " << lsm.chunks_loaded << " chunks";
  EXPECT_GE(raw.bytes_read, 10 * std::max<uint64_t>(1, lsm.bytes_read))
      << "lsm read " << lsm.bytes_read << " bytes, raw " << raw.bytes_read;
}

TEST_F(SqlExecutorTest, RepeatedSelectIsServedWithoutDiskReads) {
  const std::string statement =
      "SELECT M4(v) FROM s1 WHERE time >= 0 AND time < 2000 "
      "GROUP BY SPANS(8)";
  QueryStats first;
  ASSERT_OK_AND_ASSIGN(ResultSet cold,
                       ExecuteQuery(db_.get(), statement, &first));
  EXPECT_GT(first.pages_decoded, 0u);
  QueryStats second;
  ASSERT_OK_AND_ASSIGN(ResultSet warm,
                       ExecuteQuery(db_.get(), statement, &second));
  // The result cache answers the repeat outright: no pages decoded, no
  // chunk data touched, identical rows.
  EXPECT_EQ(second.pages_decoded, 0u);
  EXPECT_EQ(second.bytes_read, 0u);
  EXPECT_EQ(second.chunks_loaded, 0u);
  EXPECT_EQ(warm.ToCsv(), cold.ToCsv());
  EXPECT_GE(db_->result_cache().hits(), 1u);
}

TEST_F(SqlExecutorTest, WritesInvalidateTheResultCache) {
  const std::string statement = "SELECT COUNT(v), MAX(v) FROM s1";
  ResultSet before = MustQuery(statement);
  MustQuery(statement);  // warm the result cache
  ASSERT_OK(db_->Write("s1", 5000, 999.0));
  ASSERT_OK(db_->FlushAll());  // bumps the store's state version
  QueryStats stats;
  ASSERT_OK_AND_ASSIGN(ResultSet after,
                       ExecuteQuery(db_.get(), statement, &stats));
  EXPECT_NE(after.ToCsv(), before.ToCsv());  // sees the new point
}

TEST_F(SqlExecutorTest, ExplainAnalyzeRepeatShowsCacheProbeNoPageLoad) {
  const std::string statement =
      "EXPLAIN ANALYZE SELECT M4(v) FROM s1 WHERE time >= 0 AND "
      "time < 2000 GROUP BY SPANS(4)";
  ResultSet cold = MustQuery(statement);
  EXPECT_NE(cold.ToCsv().find("page_load"), std::string::npos);
  ResultSet warm = MustQuery(statement);
  std::string csv = warm.ToCsv();
  EXPECT_NE(csv.find("cache_probe"), std::string::npos);
  EXPECT_EQ(csv.find("page_load"), std::string::npos);
  EXPECT_NE(csv.find("stat:pages_decoded,0"), std::string::npos);
}

TEST_F(SqlExecutorTest, SetAdjustsRuntimeKnobs) {
  ResultSet result = MustQuery("SET parallelism = 4");
  EXPECT_EQ(db_->query_parallelism(), 4);
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"setting", "value"}));
  // Parallel execution still answers queries correctly.
  ResultSet rows = MustQuery(
      "SELECT M4(v) FROM s1 WHERE time >= 0 AND time < 2000 "
      "GROUP BY SPANS(16)");
  EXPECT_EQ(rows.num_rows(), 16u);

  MustQuery("SET result_cache_capacity = 16");
  EXPECT_EQ(db_->result_cache().capacity(), 16u);
  MustQuery("SET page_cache_bytes = 1048576");

  EXPECT_FALSE(ExecuteQuery(db_.get(), "SET parallelism = 0", nullptr).ok());
  EXPECT_FALSE(ExecuteQuery(db_.get(), "SET parallelism = 1.5", nullptr).ok());
  EXPECT_FALSE(ExecuteQuery(db_.get(), "SET nonsense = 1", nullptr).ok());
  EXPECT_FALSE(ExecuteQuery(db_.get(), "SET parallelism", nullptr).ok());
}

TEST_F(SqlExecutorTest, InsertWritesPointsAndReportsCount) {
  ResultSet result = MustQuery("INSERT INTO fresh VALUES (10, 1), (20, 2)");
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"series", "points"}));
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][0], ResultSet::Cell(std::string("fresh")));
  EXPECT_EQ(result.rows()[0][1], ResultSet::Cell(int64_t{2}));

  // Inserted points buffer in the memtable like any write; FLUSH makes
  // them visible to queries.
  MustQuery("FLUSH fresh");
  ResultSet count = MustQuery("SELECT COUNT(v) FROM fresh");
  ASSERT_EQ(count.num_rows(), 1u);
  EXPECT_EQ(count.rows()[0][1], ResultSet::Cell(int64_t{2}));

  // Inserts into an existing series merge with its data (and invalidate the
  // cached M4 results, same as Database::Write).
  MustQuery("INSERT INTO s1 VALUES (2000, 42)");
  MustQuery("FLUSH s1");
  ResultSet max = MustQuery("SELECT MAX_VALUE(v) FROM s1 WHERE time = 2000");
  ASSERT_EQ(max.num_rows(), 1u);
  EXPECT_EQ(max.rows()[0][1], ResultSet::Cell(42.0));

  // A bad series name fails without writing anything.
  EXPECT_FALSE(
      ExecuteQuery(db_.get(), "INSERT INTO 'a/b' VALUES (1, 2)", nullptr)
          .ok());
}

TEST_F(SqlExecutorTest, SetNetworkKnobs) {
  EXPECT_EQ(db_->max_connections(), 1024);
  EXPECT_EQ(db_->listen_backlog(), 64);
  MustQuery("SET max_connections = 8");
  EXPECT_EQ(db_->max_connections(), 8);
  MustQuery("SET listen_backlog = 256");
  EXPECT_EQ(db_->listen_backlog(), 256);
  EXPECT_FALSE(
      ExecuteQuery(db_.get(), "SET max_connections = 0", nullptr).ok());
  EXPECT_FALSE(
      ExecuteQuery(db_.get(), "SET listen_backlog = 1.5", nullptr).ok());
  EXPECT_EQ(db_->max_connections(), 8);
  EXPECT_EQ(db_->listen_backlog(), 256);
}

// Every knob uses the same validation: zero, negative, and non-integer
// values are rejected with the full knob catalog in the error, and the
// rejected SET leaves the previous value in place.
TEST_F(SqlExecutorTest, SetRejectsBadValuesForEveryKnobWithoutMutating) {
  ASSERT_OK(
      ExecuteQuery(db_.get(), "SET partition_interval_ms = 5000", nullptr)
          .status());
  struct Knob {
    const char* name;
    std::function<double()> current;
  };
  const std::vector<Knob> knobs = {
      {"autoflush_bytes",
       [&] { return double(db_->maintenance().memtable_flush_bytes()); }},
      {"compaction_files",
       [&] { return double(db_->maintenance().compaction_files()); }},
      {"listen_backlog", [&] { return double(db_->listen_backlog()); }},
      {"max_connections", [&] { return double(db_->max_connections()); }},
      {"parallelism", [&] { return double(db_->query_parallelism()); }},
      {"partition_interval_ms",
       [&] { return double(db_->partition_interval_ms()); }},
      {"recorder_capacity_bytes",
       [&] {
         return double(obs::FlightRecorder::Instance().capacity_bytes());
       }},
      {"result_cache_capacity",
       [&] { return double(db_->result_cache().capacity()); }},
      {"ttl_ms", [&] { return double(db_->maintenance().ttl()); }},
  };
  for (const Knob& knob : knobs) {
    const double before = knob.current();
    for (const char* bad : {"0", "-1", "2.5"}) {
      Status status =
          ExecuteQuery(db_.get(),
                       std::string("SET ") + knob.name + " = " + bad, nullptr)
              .status();
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
          << knob.name << " = " << bad;
      // The error names every valid knob so the user can recover.
      EXPECT_NE(status.ToString().find("partition_interval_ms"),
                std::string::npos)
          << status.ToString();
      EXPECT_NE(status.ToString().find("autoflush_bytes"), std::string::npos);
      EXPECT_EQ(knob.current(), before) << knob.name << " = " << bad;
    }
    // Non-numeric values die in the parser, also naming the knobs.
    Status status =
        ExecuteQuery(db_.get(), std::string("SET ") + knob.name + " = lots",
                     nullptr)
            .status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << knob.name;
    EXPECT_NE(status.ToString().find("valid knobs"), std::string::npos);
    EXPECT_EQ(knob.current(), before) << knob.name;
  }
}

TEST_F(SqlExecutorTest, SetAdjustsMaintenanceKnobs) {
  MustQuery("SET autoflush_bytes = 1024");
  EXPECT_EQ(db_->maintenance().memtable_flush_bytes(), 1024u);
  MustQuery("SET compaction_files = 3");
  EXPECT_EQ(db_->maintenance().compaction_files(), 3u);
  MustQuery("SET ttl_ms = 60000");
  EXPECT_EQ(db_->maintenance().ttl(), 60000);
  // Zero and negatives are rejected and leave the knob untouched.
  EXPECT_FALSE(ExecuteQuery(db_.get(), "SET ttl_ms = 0", nullptr).ok());
  EXPECT_EQ(db_->maintenance().ttl(), 60000);
  EXPECT_FALSE(ExecuteQuery(db_.get(), "SET ttl_ms = -5", nullptr).ok());
  EXPECT_FALSE(
      ExecuteQuery(db_.get(), "SET autoflush_bytes = -1", nullptr).ok());
}

TEST_F(SqlExecutorTest, SetReadToleranceTakesAWord) {
  EXPECT_EQ(GetReadTolerance(), ReadTolerance::kDegrade);
  MustQuery("SET read_tolerance = strict");
  EXPECT_EQ(GetReadTolerance(), ReadTolerance::kStrict);
  MustQuery("SET read_tolerance = degrade");
  EXPECT_EQ(GetReadTolerance(), ReadTolerance::kDegrade);
  // A number and an unknown word are both rejected, naming the knobs.
  Status status =
      ExecuteQuery(db_.get(), "SET read_tolerance = 5", nullptr).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("valid knobs"), std::string::npos);
  status =
      ExecuteQuery(db_.get(), "SET read_tolerance = maybe", nullptr).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("valid knobs"), std::string::npos);
  // Word values on numeric knobs are rejected the same way.
  status = ExecuteQuery(db_.get(), "SET ttl_ms = forever", nullptr).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("valid knobs"), std::string::npos);
  EXPECT_EQ(GetReadTolerance(), ReadTolerance::kDegrade);
}

TEST_F(SqlExecutorTest, SetDurableFsyncTogglesOpenStores) {
  ASSERT_OK(db_->Write("s1", 5000, 1.0));
  ASSERT_OK_AND_ASSIGN(TsStore * store, db_->GetSeries("s1"));
  const bool initial = store->durable_fsync();
  MustQuery("SET durable_fsync = 0");
  EXPECT_FALSE(store->durable_fsync());
  MustQuery("SET durable_fsync = 1");
  EXPECT_TRUE(store->durable_fsync());
  ASSERT_OK(db_->ApplySetting("durable_fsync", initial ? 1 : 0));
}

TEST_F(SqlExecutorTest, SetFaultfsKnobsReachTheEnv) {
  MustQuery("SET faultfs_eio_every = 0");
  MustQuery("SET faultfs_seed = 7");
  EXPECT_EQ(CurrentFaultConfig().eio_every, 0u);  // injection stays off
  MustQuery("SET faultfs_short_read_every = 0");
  MustQuery("SET faultfs_torn_append_every = 0");
  MustQuery("SET faultfs_fsync_fail_every = 0");
  Status status =
      ExecuteQuery(db_.get(), "SET faultfs_bogus = 1", nullptr).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("valid knobs"), std::string::npos);
  SetFaultConfig(FaultConfig{});  // leave the process on the clean env
}

TEST_F(SqlExecutorTest, SetRecorderKnobsReachTheRecorder) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Instance();
  MustQuery("SET trace_sample_every = 5");
  EXPECT_EQ(recorder.trace_sample_every(), 5u);
  MustQuery("SET trace_sample_every = 0");  // zero = off, explicitly legal
  EXPECT_EQ(recorder.trace_sample_every(), 0u);
  MustQuery("SET slow_query_millis = 250");
  EXPECT_EQ(recorder.slow_query_millis(), 250.0);
  MustQuery("SET slow_query_millis = 0");
  EXPECT_EQ(recorder.slow_query_millis(), 0.0);
  MustQuery("SET recorder_capacity_bytes = 65536");
  EXPECT_EQ(recorder.capacity_bytes(), 65536u);
  // Negative and fractional values are rejected without mutating, and the
  // ring capacity cannot be zero (that would drop everything).
  EXPECT_FALSE(
      ExecuteQuery(db_.get(), "SET trace_sample_every = -1", nullptr).ok());
  EXPECT_FALSE(
      ExecuteQuery(db_.get(), "SET slow_query_millis = 0.5", nullptr).ok());
  EXPECT_FALSE(
      ExecuteQuery(db_.get(), "SET recorder_capacity_bytes = 0", nullptr)
          .ok());
  EXPECT_EQ(recorder.capacity_bytes(), 65536u);
  recorder.set_capacity_bytes(obs::FlightRecorder::kDefaultCapacityBytes);
}

TEST_F(SqlExecutorTest, ShowQueriesReturnsRecentStatementHistory) {
  obs::FlightRecorder::Instance().Clear();
  MustQuery("SELECT v FROM s1 WHERE time >= 100 AND time < 150");
  MustQuery(
      "SELECT M4(v) FROM s1 WHERE time >= 0 AND time < 2000 "
      "GROUP BY SPANS(4)");
  EXPECT_FALSE(ExecuteQuery(db_.get(), "SELECT v FROM nope", nullptr).ok());

  ResultSet result = MustQuery("SHOW QUERIES");
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"id", "statement", "millis", "rows",
                                      "degraded", "chunks_loaded",
                                      "points_scanned", "sampled", "slow",
                                      "status"}));
  ASSERT_EQ(result.num_rows(), 3u);
  // Newest first: the failed SELECT, then the M4, then the raw scan. The
  // SHOW QUERIES itself is recorded only after its snapshot was taken.
  EXPECT_EQ(result.rows()[0][1],
            ResultSet::Cell(std::string("SELECT v FROM nope")));
  EXPECT_EQ(result.rows()[0][3], ResultSet::Cell(int64_t{0}));
  EXPECT_NE(result.rows()[0][9], ResultSet::Cell(std::string("OK")));
  EXPECT_EQ(result.rows()[1][3], ResultSet::Cell(int64_t{4}));
  EXPECT_EQ(result.rows()[1][9], ResultSet::Cell(std::string("OK")));
  EXPECT_EQ(result.rows()[2][3], ResultSet::Cell(int64_t{5}));
  EXPECT_EQ(result.rows()[2][4], ResultSet::Cell(int64_t{0}));  // degraded
  // The M4 query really loaded chunks; the counter made it into history.
  EXPECT_NE(result.rows()[1][5], ResultSet::Cell(int64_t{0}));
}

TEST_F(SqlExecutorTest, ShowProfileMergesSampledTracesWithoutExplain) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Instance();
  recorder.Clear();
  MustQuery("SET trace_sample_every = 1");
  for (int i = 0; i < 2; ++i) {
    MustQuery(
        "SELECT M4(v) FROM s1 WHERE time >= 0 AND time < 2000 "
        "GROUP BY SPANS(4)");
  }
  MustQuery("SET trace_sample_every = 0");

  ResultSet result = MustQuery("SHOW PROFILE");
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"node", "millis", "calls"}));
  ASSERT_GT(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][0],
            ResultSet::Cell(std::string("traces_merged")));
  EXPECT_EQ(result.rows()[0][2], ResultSet::Cell(int64_t{2}));
  // The merged tree carries the plain SELECTs' phase spans — no EXPLAIN
  // ANALYZE was ever issued.
  std::string csv = result.ToCsv();
  EXPECT_NE(csv.find("query"), std::string::npos);
  EXPECT_NE(csv.find("m4_lsm"), std::string::npos);
  EXPECT_NE(csv.find("solve_first"), std::string::npos);

  // RESET returns the current profile and then starts a fresh fold.
  MustQuery("SHOW PROFILE RESET");
  ResultSet after = MustQuery("SHOW PROFILE");
  ASSERT_EQ(after.num_rows(), 1u);
  EXPECT_EQ(after.rows()[0][2], ResultSet::Cell(int64_t{0}));
}

TEST_F(SqlExecutorTest, DumpTraceWritesAFileAndRejectsBadPaths) {
  obs::FlightRecorder::Instance().Clear();
  MustQuery("SELECT v FROM s1 WHERE time >= 0 AND time < 100");
  const std::string path = dir_.path() + "/dump.json";
  ResultSet result = MustQuery("DUMP TRACE '" + path + "'");
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"path", "events", "bytes"}));
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][0], ResultSet::Cell(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("traceEvents"), std::string::npos);

  Status status =
      ExecuteQuery(db_.get(),
                   "DUMP TRACE '" + dir_.path() + "/no_such_dir/x.json'",
                   nullptr)
          .status();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

// The parallel executor used to be a trace blind spot: workers ran with a
// null trace, so EXPLAIN ANALYZE under `SET parallelism` lost the per-phase
// solve_* timing. Worker block traces are now merged into the parent after
// the join.
TEST_F(SqlExecutorTest, ExplainAnalyzeWithParallelismReportsSolvePhases) {
  MustQuery("SET parallelism = 4");
  ResultSet result = MustQuery(
      "EXPLAIN ANALYZE SELECT M4(v) FROM s1 WHERE time >= 0 AND "
      "time < 2000 GROUP BY SPANS(8)");
  std::string csv = result.ToCsv();
  EXPECT_NE(csv.find("m4_lsm"), std::string::npos);
  EXPECT_NE(csv.find("solve_first"), std::string::npos);
  EXPECT_NE(csv.find("solve_last"), std::string::npos);
  EXPECT_NE(csv.find("solve_bottom"), std::string::npos);
  EXPECT_NE(csv.find("solve_top"), std::string::npos);
  EXPECT_NE(csv.find("rows_returned,8,null"), std::string::npos);
}

TEST_F(SqlExecutorTest, FlushStatementPersistsTheMemtable) {
  ASSERT_OK(db_->Write("s1", 5000, 1.0));
  ASSERT_OK_AND_ASSIGN(TsStore * store, db_->GetSeries("s1"));
  ASSERT_GT(store->memtable_size(), 0u);
  ResultSet result = MustQuery("FLUSH s1");
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"series", "action", "status"}));
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][0], ResultSet::Cell(std::string("s1")));
  EXPECT_EQ(store->memtable_size(), 0u);
  // Unknown series is an error; bare FLUSH hits every series.
  EXPECT_FALSE(ExecuteQuery(db_.get(), "FLUSH nope", nullptr).ok());
  ASSERT_OK(db_->Write("s1", 5001, 1.0));
  MustQuery("FLUSH");
  EXPECT_EQ(store->memtable_size(), 0u);
}

TEST_F(SqlExecutorTest, CompactStatementMergesFiles) {
  ASSERT_OK_AND_ASSIGN(TsStore * store, db_->GetSeries("s1"));
  ASSERT_OK(db_->Write("s1", 100, 42.0));  // overwrite → second file
  MustQuery("FLUSH s1");
  ASSERT_GT(store->NumFiles(), 1u);
  ResultSet result = MustQuery("COMPACT s1");
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][1], ResultSet::Cell(std::string("compact")));
  EXPECT_EQ(store->NumFiles(), 1u);
  // The overwrite won.
  ResultSet rows =
      MustQuery("SELECT v FROM s1 WHERE time >= 100 AND time < 101");
  ASSERT_EQ(rows.num_rows(), 1u);
  EXPECT_EQ(rows.rows()[0][1], ResultSet::Cell(42.0));
  EXPECT_FALSE(ExecuteQuery(db_.get(), "COMPACT nope", nullptr).ok());
}

TEST_F(SqlExecutorTest, ShowJobsListsScheduledWork) {
  db_->StartMaintenance();
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<TsStore> store,
                       db_->GetSeriesShared("s1"));
  db_->maintenance().ScheduleFlush("s1", store);
  db_->maintenance().Drain();
  ResultSet result = MustQuery("SHOW JOBS");
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"id", "key", "type", "state",
                                      "periodic", "runs", "last_millis",
                                      "last_status"}));
  bool saw_flush = false;
  for (const auto& row : result.rows()) {
    if (row[2] == ResultSet::Cell(std::string("flush")) &&
        row[3] == ResultSet::Cell(std::string("done"))) {
      saw_flush = true;
    }
  }
  EXPECT_TRUE(saw_flush);
  db_->StopMaintenance();
}

TEST_F(SqlExecutorTest, ExplainAnalyzeNarrowZoomShowsPartitionPruning) {
  ASSERT_OK(db_->ApplySetting("partition_interval_ms", 250));
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(db_->Write("parted", i * 10, double(i)));  // 8 partitions
  }
  ASSERT_OK(db_->FlushAll());
  // A zoom into one partition prunes the other seven before their file
  // metadata is touched.
  ResultSet result = MustQuery(
      "EXPLAIN ANALYZE SELECT M4(v) FROM parted "
      "WHERE time >= 500 AND time < 700 GROUP BY SPANS(4)");
  std::string csv = result.ToCsv();
  EXPECT_NE(csv.find("stat:partitions_scanned,1"), std::string::npos) << csv;
  EXPECT_NE(csv.find("stat:partitions_pruned,7"), std::string::npos) << csv;
  // The metadata-only plan reports the same split.
  ResultSet plan = MustQuery(
      "EXPLAIN SELECT M4(v) FROM parted "
      "WHERE time >= 500 AND time < 700 GROUP BY SPANS(4)");
  csv = plan.ToCsv();
  EXPECT_NE(csv.find("partitions_total,8"), std::string::npos) << csv;
  EXPECT_NE(csv.find("partitions_pruned,7"), std::string::npos) << csv;
}

TEST_F(SqlExecutorTest, ShowSeriesListsStorageShape) {
  ASSERT_OK(db_->ApplySetting("partition_interval_ms", 500));
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(db_->Write("parted", i * 500, double(i)));
  }
  ASSERT_OK(db_->FlushAll());
  ResultSet result = MustQuery("SHOW SERIES");
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"series", "partition_interval_ms",
                                      "partitions", "files", "chunks",
                                      "data_start", "data_end"}));
  ASSERT_EQ(result.num_rows(), 2u);  // sorted: parted, s1
  const auto& parted = result.rows()[0];
  EXPECT_EQ(parted[0], ResultSet::Cell(std::string("parted")));
  EXPECT_EQ(parted[1], ResultSet::Cell(int64_t{500}));
  EXPECT_EQ(parted[2], ResultSet::Cell(int64_t{4}));  // one per point
  EXPECT_EQ(parted[5], ResultSet::Cell(int64_t{0}));
  EXPECT_EQ(parted[6], ResultSet::Cell(int64_t{1500}));
  const auto& flat = result.rows()[1];
  EXPECT_EQ(flat[0], ResultSet::Cell(std::string("s1")));
  EXPECT_EQ(flat[1], ResultSet::Cell(int64_t{0}));
  EXPECT_EQ(flat[2], ResultSet::Cell(int64_t{1}));  // one legacy group
}

TEST_F(SqlExecutorTest, DisabledResultCacheStillUsesPageCache) {
  // Result caching is disabled at open (SET only accepts positive values).
  TempDir dir;
  DatabaseConfig config;
  config.root_dir = dir.path();
  config.series_defaults.points_per_chunk = 40;
  config.series_defaults.memtable_flush_threshold = 40;
  config.m4_result_cache_capacity = 0;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db, Database::Open(config));
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(db->Write("s1", i * 10, double(i)));
  }
  ASSERT_OK(db->FlushAll());
  const std::string statement =
      "SELECT M4(v) FROM s1 WHERE time >= 0 AND time < 2000 "
      "GROUP BY SPANS(8)";
  QueryStats first;
  ASSERT_OK(ExecuteQuery(db.get(), statement, &first).status());
  QueryStats second;
  ASSERT_OK(ExecuteQuery(db.get(), statement, &second).status());
  // The query re-executes (chunk data is touched) but every page comes from
  // the shared decoded-page cache instead of disk.
  EXPECT_GT(second.chunks_loaded, 0u);
  EXPECT_EQ(second.pages_decoded, 0u);
  EXPECT_EQ(second.bytes_read, 0u);
}

// Property: the SQL M4 path agrees with the direct operator API on messy
// multi-chunk stores.
class SqlM4Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlM4Property, SqlMatchesOperator) {
  Rng rng(GetParam());
  TempDir dir;
  DatabaseConfig config;
  config.root_dir = dir.path();
  config.series_defaults.points_per_chunk = 30;
  config.series_defaults.memtable_flush_threshold = 30;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(config));
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 90; ++i) {
      ASSERT_OK(db->Write("s", rng.Uniform(0, 3000),
                          std::round(rng.Gaussian(0, 25))));
    }
    ASSERT_OK(db->FlushAll());
    if (rng.Bernoulli(0.5)) {
      Timestamp start = rng.Uniform(0, 3000);
      ASSERT_OK(db->DeleteRange("s",
                                TimeRange(start, start + rng.Uniform(1, 600))));
    }
  }
  int64_t w = rng.Uniform(1, 40);
  Timestamp tqs = rng.Uniform(0, 1000);
  Timestamp tqe = tqs + rng.Uniform(1, 3000);

  std::string statement =
      "SELECT M4(v) FROM s WHERE time >= " + std::to_string(tqs) +
      " AND time < " + std::to_string(tqe) + " GROUP BY SPANS(" +
      std::to_string(w) + ")";
  ASSERT_OK_AND_ASSIGN(ResultSet result,
                       ExecuteQuery(db.get(), statement, nullptr));

  auto store = db->GetSeries("s");
  ASSERT_TRUE(store.ok());
  ASSERT_OK_AND_ASSIGN(M4Result m4,
                       RunM4Udf(**store, M4Query{tqs, tqe, w}, nullptr));
  ASSERT_EQ(result.num_rows(), m4.size());
  for (size_t i = 0; i < m4.size(); ++i) {
    if (!m4[i].has_data) {
      EXPECT_EQ(result.rows()[i][1], ResultSet::Cell())
          << "seed " << GetParam() << " span " << i;
      continue;
    }
    EXPECT_EQ(result.rows()[i][1], ResultSet::Cell(m4[i].first.t))
        << "seed " << GetParam() << " span " << i;
    EXPECT_EQ(result.rows()[i][3], ResultSet::Cell(m4[i].last.t));
    EXPECT_EQ(result.rows()[i][6], ResultSet::Cell(m4[i].bottom.v));
    EXPECT_EQ(result.rows()[i][8], ResultSet::Cell(m4[i].top.v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlM4Property,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

// --- ExecuteInsertBatch: the net worker's coalescing path ---------------

TEST_F(SqlExecutorTest, InsertBatchCoalescesRunsPerSeries) {
  obs::Counter& coalesced = obs::GetCounter("batch_insert_coalesced_total");
  obs::Counter& groups = obs::GetCounter("batch_insert_groups_total");
  obs::Counter& locks = obs::GetCounter("store_write_lock_acquisitions_total");
  uint64_t coalesced0 = coalesced.value();
  uint64_t groups0 = groups.value();
  uint64_t locks0 = locks.value();

  // Two runs (3x a, 2x b) split by the series switch; the final singleton c
  // executes unbatched.
  std::vector<std::string> lines = {
      "INSERT INTO a VALUES (10, 1)",  "INSERT INTO a VALUES (20, 2)",
      "INSERT INTO a VALUES (30, 3)",  "INSERT INTO b VALUES (10, 4)",
      "INSERT INTO b VALUES (20, 5)",  "INSERT INTO c VALUES (10, 6)",
  };
  std::vector<Result<ResultSet>> results =
      ExecuteInsertBatch(db_.get(), lines);
  ASSERT_EQ(results.size(), lines.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].status().ToString();
    // Every reply is per-statement: one row reporting (series, 1 point) —
    // indistinguishable from six unbatched executions.
    ASSERT_EQ(results[i]->num_rows(), 1u);
    EXPECT_EQ(results[i]->rows()[0][1], ResultSet::Cell(int64_t{1}));
  }
  EXPECT_EQ(coalesced.value() - coalesced0, 5u);  // 3 + 2, singleton excluded
  EXPECT_EQ(groups.value() - groups0, 2u);
  // 2 batched writes + 1 plain write = 3 lock acquisitions for 6 statements.
  EXPECT_EQ(locks.value() - locks0, 3u);

  // The points all landed.
  auto a = db_->GetSeries("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->memtable_size(), 3u);
}

TEST_F(SqlExecutorTest, InsertBatchKeepsPerStatementErrorsInOrder) {
  std::vector<std::string> lines = {
      "INSERT INTO a VALUES (10, 1)",
      "this is not sql",
      "INSERT INTO a VALUES (20, 2)",
      "SELECT COUNT(v) FROM s1",
      "INSERT INTO a VALUES (30, 3)",
  };
  std::vector<Result<ResultSet>> results =
      ExecuteInsertBatch(db_.get(), lines);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());  // the parse error answers only line 1
  EXPECT_TRUE(results[2].ok());
  ASSERT_TRUE(results[3].ok());
  EXPECT_EQ(results[3]->columns()[0], "span_start");  // SELECT ran as itself
  EXPECT_TRUE(results[4].ok());
  auto a = db_->GetSeries("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->memtable_size(), 3u);
}

TEST_F(SqlExecutorTest, InsertBatchFailureReportsEveryStatementOfTheRun) {
  // 1e999 overflows to +inf, which the storage layer rejects — the whole
  // coalesced run fails, and every statement of it reports the error.
  std::vector<std::string> lines = {
      "INSERT INTO bad VALUES (10, 1e999)",
      "INSERT INTO bad VALUES (20, 1e999)",
  };
  std::vector<Result<ResultSet>> results =
      ExecuteInsertBatch(db_.get(), lines);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace tsviz::sql
