#include "read/merge_reader.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "m4/reference.h"
#include "read/data_reader.h"
#include "read/series_reader.h"
#include "test_util.h"

namespace tsviz {
namespace {

StoreConfig TestConfig(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 50;
  config.memtable_flush_threshold = 50;
  config.encoding.page_size_points = 16;
  return config;
}

TEST(MergeReaderTest, SingleChunkPassThrough) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  std::vector<Point> points = MakeLinearSeries(50, 0, 10);
  ASSERT_OK(store->WriteAll(points));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> merged,
      ReadMergedSeries(*store, TimeRange(0, 1000), nullptr));
  EXPECT_EQ(merged, points);
}

TEST(MergeReaderTest, ClipsToRange) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(100, 0, 10)));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> merged,
      ReadMergedSeries(*store, TimeRange(105, 305), nullptr));
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged.front().t, 110);
  EXPECT_EQ(merged.back().t, 300);
  EXPECT_EQ(merged.size(), 20u);
}

TEST(MergeReaderTest, LaterVersionOverwritesSameTimestamp) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  // First flush: values 0; second flush overwrites odd timestamps with 1.
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i, 0.0));
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(store->Write(i * 2 + 1, 1.0));  // overwrites odd t < 50
  }
  ASSERT_OK(store->Flush());
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> merged,
      ReadMergedSeries(*store, TimeRange(0, 49), nullptr));
  ASSERT_EQ(merged.size(), 50u);
  for (const Point& p : merged) {
    EXPECT_EQ(p.v, p.t % 2 == 1 ? 1.0 : 0.0) << "t=" << p.t;
  }
}

TEST(MergeReaderTest, DeleteHidesOlderChunkButNotNewer) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i, 0.0));  // chunk v1
  ASSERT_OK(store->DeleteRange(TimeRange(10, 19)));              // delete v2
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(store->Write(i + 100, 1.0));  // chunk v3 after the delete
  }
  ASSERT_OK(store->Flush());
  ASSERT_OK(store->DeleteRange(TimeRange(110, 114)));  // delete v4

  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> merged,
      ReadMergedSeries(*store, TimeRange(0, 200), nullptr));
  // 50 - 10 deleted + 50 - 5 deleted.
  EXPECT_EQ(merged.size(), 85u);
  for (const Point& p : merged) {
    EXPECT_FALSE(p.t >= 10 && p.t <= 19) << "t=" << p.t;
    EXPECT_FALSE(p.t >= 110 && p.t <= 114) << "t=" << p.t;
  }
}

TEST(MergeReaderTest, DeleteOlderThanChunkDoesNotApply) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i, 0.0));  // v1
  ASSERT_OK(store->DeleteRange(TimeRange(0, 1000)));             // v2
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i, 7.0));  // v3
  ASSERT_OK(store->Flush());
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> merged,
      ReadMergedSeries(*store, TimeRange(0, 1000), nullptr));
  // The delete (v2) kills chunk v1 entirely, but chunk v3 survives.
  ASSERT_EQ(merged.size(), 50u);
  for (const Point& p : merged) EXPECT_EQ(p.v, 7.0);
}

TEST(MergeReaderTest, EmptyStoreYieldsNothing) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> merged,
      ReadMergedSeries(*store, TimeRange(0, 100), nullptr));
  EXPECT_TRUE(merged.empty());
}

// Property test: arbitrary overlapping writes + deletes must match the
// literal Definition 2.7 oracle.
class MergeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeProperty, MatchesReferenceMerge) {
  Rng rng(GetParam());
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));

  const Timestamp domain = 2000;
  int n_rounds = static_cast<int>(rng.Uniform(2, 8));
  for (int round = 0; round < n_rounds; ++round) {
    if (rng.Bernoulli(0.3) && round > 0) {
      Timestamp start = rng.Uniform(0, domain);
      Timestamp len = rng.Uniform(1, domain / 4);
      ASSERT_OK(store->DeleteRange(TimeRange(start, start + len)));
    }
    // A batch of writes over a random sub-window, possibly overlapping
    // earlier flushes.
    Timestamp base = rng.Uniform(0, domain / 2);
    int n = static_cast<int>(rng.Uniform(10, 120));
    for (int i = 0; i < n; ++i) {
      ASSERT_OK(store->Write(base + rng.Uniform(0, domain / 2),
                             rng.Gaussian(0, 100)));
    }
    ASSERT_OK(store->Flush());
  }

  std::vector<Point> expected =
      ReferenceMerge(DumpChunks(*store), DumpDeletes(*store));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> merged,
      ReadMergedSeries(*store, TimeRange(kMinTimestamp / 2,
                                         kMaxTimestamp / 2),
                       nullptr));
  ASSERT_EQ(merged.size(), expected.size()) << "seed " << GetParam();
  for (size_t i = 0; i < merged.size(); ++i) {
    ASSERT_EQ(merged[i], expected[i]) << "seed " << GetParam() << " i=" << i;
  }

  // Clipped reads agree with clipping the oracle.
  Timestamp lo = rng.Uniform(0, domain);
  Timestamp hi = lo + rng.Uniform(0, domain);
  ASSERT_OK_AND_ASSIGN(std::vector<Point> clipped,
                       ReadMergedSeries(*store, TimeRange(lo, hi), nullptr));
  std::vector<Point> expected_clipped;
  for (const Point& p : expected) {
    if (p.t >= lo && p.t <= hi) expected_clipped.push_back(p);
  }
  EXPECT_EQ(clipped, expected_clipped) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{31}));

}  // namespace
}  // namespace tsviz
