#include "storage/chunk_writer.h"

#include <gtest/gtest.h>

#include <vector>

#include "encoding/page.h"
#include "test_util.h"

namespace tsviz {
namespace {

ChunkEncodingOptions SmallPages() {
  ChunkEncodingOptions options;
  options.page_size_points = 100;
  return options;
}

TEST(ChunkWriterTest, EncodesPagesAndStats) {
  std::vector<Point> points = MakeLinearSeries(450, 1000, 5);
  ASSERT_OK_AND_ASSIGN(EncodedChunk chunk,
                       EncodeChunk(points, 9, SmallPages()));
  EXPECT_EQ(chunk.meta.version, 9u);
  EXPECT_EQ(chunk.meta.count, 450u);
  EXPECT_EQ(chunk.meta.pages.size(), 5u);  // 4 full + 1 partial page
  EXPECT_EQ(chunk.meta.pages.back().count, 50u);
  EXPECT_EQ(chunk.meta.stats.first, points.front());
  EXPECT_EQ(chunk.meta.stats.last, points.back());
  EXPECT_EQ(chunk.meta.data_length, chunk.blob.size());
  EXPECT_EQ(chunk.meta.index.count, 450u);

  // Pages decode back to the original points and agree with the directory.
  std::vector<Point> decoded;
  for (const PageInfo& page : chunk.meta.pages) {
    std::vector<Point> page_points;
    ASSERT_OK(DecodePage(
        std::string_view(chunk.blob).substr(page.offset, page.length),
        &page_points));
    ASSERT_EQ(page_points.size(), page.count);
    EXPECT_EQ(page_points.front().t, page.min_t);
    EXPECT_EQ(page_points.back().t, page.max_t);
    decoded.insert(decoded.end(), page_points.begin(), page_points.end());
  }
  EXPECT_EQ(decoded, points);
}

TEST(ChunkWriterTest, PageDirectoryOffsetsAreContiguous) {
  std::vector<Point> points = MakeLinearSeries(1000, 0, 1);
  ASSERT_OK_AND_ASSIGN(EncodedChunk chunk,
                       EncodeChunk(points, 1, SmallPages()));
  uint32_t expected_offset = 0;
  for (const PageInfo& page : chunk.meta.pages) {
    EXPECT_EQ(page.offset, expected_offset);
    expected_offset += page.length;
  }
  EXPECT_EQ(expected_offset, chunk.blob.size());
}

TEST(ChunkWriterTest, RejectsEmptyChunk) {
  EXPECT_EQ(EncodeChunk({}, 1, SmallPages()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChunkWriterTest, RejectsUnsortedOrDuplicateTimestamps) {
  EXPECT_EQ(EncodeChunk({{10, 1.0}, {5, 2.0}}, 1, SmallPages())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EncodeChunk({{10, 1.0}, {10, 2.0}}, 1, SmallPages())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ChunkWriterTest, RejectsZeroPageSize) {
  ChunkEncodingOptions options;
  options.page_size_points = 0;
  EXPECT_EQ(EncodeChunk({{1, 1.0}}, 1, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChunkWriterTest, IndexDisabledStillRecordsCount) {
  ChunkEncodingOptions options = SmallPages();
  options.build_index = false;
  std::vector<Point> points = MakeLinearSeries(10);
  ASSERT_OK_AND_ASSIGN(EncodedChunk chunk, EncodeChunk(points, 1, options));
  EXPECT_EQ(chunk.meta.index.count, 10u);
  EXPECT_TRUE(chunk.meta.index.splits.empty());
}

TEST(ChunkWriterTest, PlainCodecsRoundTrip) {
  ChunkEncodingOptions options = SmallPages();
  options.ts_codec = TsCodec::kPlain;
  options.value_codec = ValueCodec::kPlain;
  std::vector<Point> points = MakeLinearSeries(123, -500, 3);
  ASSERT_OK_AND_ASSIGN(EncodedChunk chunk, EncodeChunk(points, 2, options));
  std::vector<Point> decoded;
  for (const PageInfo& page : chunk.meta.pages) {
    ASSERT_OK(DecodePage(
        std::string_view(chunk.blob).substr(page.offset, page.length),
        &decoded));
  }
  EXPECT_EQ(decoded, points);
}

TEST(ChunkWriterTest, CompressionBeatsPlainOnRegularData) {
  std::vector<Point> points =
      MakeSeries(5000, 0, 1000, [](size_t) { return 25.0; });
  ChunkEncodingOptions compressed = SmallPages();
  ChunkEncodingOptions plain = SmallPages();
  plain.ts_codec = TsCodec::kPlain;
  plain.value_codec = ValueCodec::kPlain;
  ASSERT_OK_AND_ASSIGN(EncodedChunk c, EncodeChunk(points, 1, compressed));
  ASSERT_OK_AND_ASSIGN(EncodedChunk p, EncodeChunk(points, 1, plain));
  EXPECT_LT(c.blob.size() * 5, p.blob.size());
}

}  // namespace
}  // namespace tsviz
