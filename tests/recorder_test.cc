// Tests for the flight recorder: ring-buffer semantics and byte-bounded
// eviction, deterministic every-Nth sampling, the slow-query log, the merged
// profile, Chrome trace export (validated with an in-test JSON parser), and
// a concurrency hammer meant to run under tsan.
#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "db/database.h"
#include "sql/executor.h"
#include "test_util.h"

namespace tsviz::obs {
namespace {

// The recorder is deliberately process-wide, so every test restores the
// default knobs and drains the buffer on both sides; otherwise a leaked
// sampling rate or shrunken capacity would couple unrelated tests.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetRecorder(); }
  void TearDown() override { ResetRecorder(); }

  static void ResetRecorder() {
    FlightRecorder& recorder = FlightRecorder::Instance();
    recorder.set_trace_sample_every(0);
    recorder.set_slow_query_millis(0);
    recorder.set_capacity_bytes(FlightRecorder::kDefaultCapacityBytes);
    recorder.Clear();
  }
};

RecordedEvent QueryEvent(std::string statement, double millis = 1.0) {
  RecordedEvent event;
  event.kind = EventKind::kQuery;
  event.statement = std::move(statement);
  event.status = "OK";
  event.millis = millis;
  return event;
}

TEST_F(RecorderTest, RecordAssignsMonotonicIdsAndSnapshotsNewestFirst) {
  FlightRecorder& recorder = FlightRecorder::Instance();
  const uint64_t id_a = recorder.Record(QueryEvent("a"));
  const uint64_t id_b = recorder.Record(QueryEvent("b"));
  const uint64_t id_c = recorder.Record(QueryEvent("c"));
  EXPECT_LT(id_a, id_b);
  EXPECT_LT(id_b, id_c);
  EXPECT_EQ(recorder.event_count(), 3u);
  EXPECT_GT(recorder.bytes(), 0u);

  std::vector<RecordedEvent> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].statement, "c");
  EXPECT_EQ(snapshot[1].statement, "b");
  EXPECT_EQ(snapshot[2].statement, "a");
  // Record() stamps the bookkeeping fields.
  EXPECT_EQ(snapshot[0].id, id_c);
  EXPECT_GT(snapshot[0].end_millis, 0.0);
  EXPECT_GT(snapshot[0].thread_track, 0u);
}

TEST_F(RecorderTest, SnapshotFiltersByKindAndHonorsLimit) {
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.Record(QueryEvent("q1"));
  RecordedEvent bg;
  bg.kind = EventKind::kBgJob;
  bg.statement = "flush s1";
  recorder.Record(std::move(bg));
  RecordedEvent conn;
  conn.kind = EventKind::kConnection;
  conn.statement = "connection opened";
  recorder.Record(std::move(conn));
  recorder.Record(QueryEvent("q2"));

  std::vector<RecordedEvent> queries =
      recorder.Snapshot(SIZE_MAX, EventKind::kQuery);
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].statement, "q2");
  EXPECT_EQ(queries[1].statement, "q1");

  EXPECT_EQ(recorder.Snapshot(SIZE_MAX, EventKind::kBgJob).size(), 1u);
  EXPECT_EQ(recorder.Snapshot(SIZE_MAX, EventKind::kCorruption).size(), 0u);

  std::vector<RecordedEvent> limited = recorder.Snapshot(1);
  ASSERT_EQ(limited.size(), 1u);
  EXPECT_EQ(limited[0].statement, "q2");
}

TEST_F(RecorderTest, ByteBoundEvictsOldestEventsButNeverTheNewest) {
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.set_capacity_bytes(4096);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(recorder.Record(
        QueryEvent("q" + std::to_string(i) + std::string(512, 'x'))));
  }
  // The ring stayed within its bound by dropping from the front.
  EXPECT_LE(recorder.bytes(), 4096u);
  EXPECT_LT(recorder.event_count(), 64u);
  EXPECT_GT(recorder.event_count(), 0u);
  std::vector<RecordedEvent> snapshot = recorder.Snapshot();
  EXPECT_EQ(snapshot.front().id, ids.back());  // newest survives
  EXPECT_GT(snapshot.back().id, ids.front());  // oldest did not

  // One event larger than the whole capacity still lands: eviction always
  // keeps at least the event being recorded.
  recorder.Clear();
  recorder.Record(QueryEvent(std::string(10000, 'y')));
  EXPECT_EQ(recorder.event_count(), 1u);

  // Shrinking the capacity knob evicts immediately.
  recorder.Clear();
  for (int i = 0; i < 8; ++i) {
    recorder.Record(QueryEvent(std::string(512, 'z')));
  }
  const size_t before = recorder.event_count();
  recorder.set_capacity_bytes(1024);
  EXPECT_LT(recorder.event_count(), before);
  EXPECT_LE(recorder.bytes(), 1024u);
}

TEST_F(RecorderTest, SampleEveryNIsDeterministic) {
  FlightRecorder& recorder = FlightRecorder::Instance();
  // With the knob off the decision is a single relaxed load: always false.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(recorder.ShouldSampleTrace());
  }

  // Every 3rd arrival samples. The arrival counter is process-wide and
  // monotonic, so the phase is arbitrary, but the stride is exact: once the
  // first hit is seen, hits land exactly every 3 arrivals.
  recorder.set_trace_sample_every(3);
  std::vector<bool> hits;
  for (int i = 0; i < 12; ++i) {
    hits.push_back(recorder.ShouldSampleTrace());
  }
  int first = -1;
  for (int i = 0; i < int(hits.size()); ++i) {
    if (hits[i]) {
      first = i;
      break;
    }
  }
  ASSERT_GE(first, 0);
  ASSERT_LT(first, 3);  // a hit must occur within the first N arrivals
  for (int i = 0; i < int(hits.size()); ++i) {
    EXPECT_EQ(hits[i], (i - first) % 3 == 0) << "arrival " << i;
  }

  // every = 1 samples everything.
  recorder.set_trace_sample_every(1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(recorder.ShouldSampleTrace());
  }
}

TEST_F(RecorderTest, ProfileMergesTracesAndSurvivesRingEviction) {
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.set_capacity_bytes(2048);  // small ring: events will be evicted
  for (int i = 0; i < 32; ++i) {
    auto trace = std::make_shared<Trace>("query");
    {
      TraceSpan span(trace.get(), "m4_lsm");
      TraceSpan child(trace.get(), "solve_first");
    }
    trace->root().millis = 1.0;
    RecordedEvent event = QueryEvent(std::string(256, 'q'));
    event.trace = trace;
    recorder.Record(std::move(event));
  }
  EXPECT_LT(recorder.event_count(), 32u);  // the ring really did evict

  // The profile is "since start", not "while buffered": all 32 traces are
  // in the fold even though most of their events are gone.
  uint64_t merged = 0;
  std::unique_ptr<TraceNode> profile = recorder.ProfileSnapshot(&merged);
  EXPECT_EQ(merged, 32u);
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->name, "profile");
  ASSERT_EQ(profile->children.size(), 1u);
  const TraceNode& query = *profile->children[0];
  EXPECT_EQ(query.name, "query");
  EXPECT_EQ(query.calls, 32u);
  ASSERT_EQ(query.children.size(), 1u);
  EXPECT_EQ(query.children[0]->name, "m4_lsm");
  EXPECT_EQ(query.children[0]->calls, 32u);
  ASSERT_EQ(query.children[0]->children.size(), 1u);
  EXPECT_EQ(query.children[0]->children[0]->name, "solve_first");

  recorder.ResetProfile();
  profile = recorder.ProfileSnapshot(&merged);
  EXPECT_EQ(merged, 0u);
  EXPECT_TRUE(profile->children.empty());
}

// ---------------------------------------------------------------------------
// A minimal JSON parser — just enough to validate that DumpChromeTrace emits
// well-formed Chrome trace-event JSON without trusting the producer's own
// serializer to check itself.

struct JsonValue {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                return false;
              }
              ++pos_;
            }
            out->push_back('?');  // code point itself is irrelevant here
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object[key] = std::move(value);
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->type = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    // Number.
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return false;
    out->type = JsonValue::kNumber;
    pos_ += size_t(end - start);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// SQL-level tests: a small database so the recorder is fed through the real
// ExecuteQuery / maintenance paths.

class RecorderSqlTest : public RecorderTest {
 protected:
  void SetUp() override {
    RecorderTest::SetUp();
    DatabaseConfig config;
    config.root_dir = dir_.path();
    config.series_defaults.points_per_chunk = 40;
    config.series_defaults.memtable_flush_threshold = 40;
    auto db = Database::Open(config);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(db_->Write("s1", i * 10, double(i)));
    }
    ASSERT_OK(db_->FlushAll());
  }

  sql::ResultSet MustQuery(const std::string& statement) {
    auto result = sql::ExecuteQuery(db_.get(), statement, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << " for "
                             << statement;
    return result.ok() ? *result : sql::ResultSet();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(RecorderSqlTest, SlowQueryThresholdFlagsAndTracesStatements) {
  FlightRecorder& recorder = FlightRecorder::Instance();

  // Armed but with an unreachable threshold: SELECTs carry a trace (the
  // engine cannot trace retroactively) yet are not flagged slow.
  MustQuery("SET slow_query_millis = 1000000");
  EXPECT_EQ(recorder.slow_query_millis(), 1000000.0);
  MustQuery("SELECT v FROM s1 WHERE time >= 0 AND time < 100");
  std::vector<RecordedEvent> snapshot =
      recorder.Snapshot(1, EventKind::kQuery);
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_FALSE(snapshot[0].slow);
  EXPECT_FALSE(snapshot[0].sampled);
  ASSERT_NE(snapshot[0].trace, nullptr);
  EXPECT_EQ(snapshot[0].trace->root().name, "query");

  // Threshold below any measurable duration: the same query is now slow.
  recorder.set_slow_query_millis(1e-9);
  MustQuery("SELECT v FROM s1 WHERE time >= 0 AND time < 100");
  snapshot = recorder.Snapshot(1, EventKind::kQuery);
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_TRUE(snapshot[0].slow);
  ASSERT_NE(snapshot[0].trace, nullptr);
  EXPECT_GE(snapshot[0].millis, 0.0);
  EXPECT_EQ(snapshot[0].rows, 10u);
  EXPECT_EQ(snapshot[0].status, "OK");

  // Disarmed: plain SELECTs go back to the one-append cost, no trace.
  recorder.set_slow_query_millis(0);
  MustQuery("SELECT v FROM s1 WHERE time >= 0 AND time < 100");
  snapshot = recorder.Snapshot(1, EventKind::kQuery);
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_FALSE(snapshot[0].slow);
  EXPECT_EQ(snapshot[0].trace, nullptr);
}

TEST_F(RecorderSqlTest, SampledSelectsCarryStatsAndFeedTheProfile) {
  FlightRecorder& recorder = FlightRecorder::Instance();
  MustQuery("SET trace_sample_every = 1");
  MustQuery(
      "SELECT M4(v) FROM s1 WHERE time >= 0 AND time < 1000 "
      "GROUP BY SPANS(4)");

  std::vector<RecordedEvent> queries =
      recorder.Snapshot(SIZE_MAX, EventKind::kQuery);
  const RecordedEvent* select = nullptr;
  for (const RecordedEvent& event : queries) {
    if (event.statement.rfind("SELECT M4", 0) == 0) {
      select = &event;
      break;
    }
  }
  ASSERT_NE(select, nullptr);
  EXPECT_TRUE(select->sampled);
  EXPECT_FALSE(select->slow);
  EXPECT_EQ(select->rows, 4u);
  EXPECT_EQ(select->status, "OK");
  EXPECT_GT(select->chunks_total, 0u);
  ASSERT_NE(select->trace, nullptr);

  // The sampled trace was folded into the always-on profile — this is the
  // `SHOW PROFILE` source, no EXPLAIN ANALYZE involved.
  uint64_t merged = 0;
  std::unique_ptr<TraceNode> profile = recorder.ProfileSnapshot(&merged);
  EXPECT_GT(merged, 0u);
  const TraceNode* query = nullptr;
  for (const auto& child : profile->children) {
    if (child->name == "query") query = child.get();
  }
  ASSERT_NE(query, nullptr);
  bool saw_m4_lsm = false;
  for (const auto& child : query->children) {
    if (child->name == "m4_lsm") saw_m4_lsm = true;
  }
  EXPECT_TRUE(saw_m4_lsm);
}

TEST_F(RecorderSqlTest, DumpTraceIsValidChromeJsonWithDistinctTracks) {
  FlightRecorder& recorder = FlightRecorder::Instance();
  MustQuery("SET trace_sample_every = 1");
  MustQuery(
      "SELECT M4(v) FROM s1 WHERE time >= 0 AND time < 1000 "
      "GROUP BY SPANS(4)");

  // A real background flush: the bg_job trace is recorded from a scheduler
  // worker thread, giving the export a second thread track.
  ASSERT_OK(db_->Write("s1", 5000, 1.0));
  db_->StartMaintenance();
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<TsStore> store,
                       db_->GetSeriesShared("s1"));
  db_->maintenance().ScheduleFlush("s1", store);
  db_->maintenance().Drain();
  ASSERT_FALSE(recorder.Snapshot(SIZE_MAX, EventKind::kBgJob).empty());

  const std::string path = dir_.path() + "/trace.json";
  sql::ResultSet result = MustQuery("DUMP TRACE '" + path + "'");
  EXPECT_EQ(result.columns(),
            (std::vector<std::string>{"path", "events", "bytes"}));
  ASSERT_EQ(result.num_rows(), 1u);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  JsonValue root;
  ASSERT_TRUE(JsonParser(text).Parse(&root))
      << "invalid JSON: " << text.substr(0, 400);
  ASSERT_EQ(root.type, JsonValue::kObject);
  ASSERT_EQ(root.object.count("traceEvents"), 1u);
  const JsonValue& events = root.object["traceEvents"];
  ASSERT_EQ(events.type, JsonValue::kArray);
  ASSERT_FALSE(events.array.empty());

  double query_tid = -1, bg_tid = -1;
  bool saw_bg_flush = false;
  for (const JsonValue& slice : events.array) {
    // Every slice is a complete event with the mandatory Chrome fields.
    ASSERT_EQ(slice.type, JsonValue::kObject);
    auto& obj = const_cast<JsonValue&>(slice).object;
    ASSERT_EQ(obj["name"].type, JsonValue::kString);
    ASSERT_EQ(obj["ph"].str, "X");
    ASSERT_EQ(obj["ts"].type, JsonValue::kNumber);
    ASSERT_EQ(obj["dur"].type, JsonValue::kNumber);
    ASSERT_EQ(obj["pid"].type, JsonValue::kNumber);
    ASSERT_EQ(obj["tid"].type, JsonValue::kNumber);
    const std::string& cat = obj["cat"].str;
    if (cat == "query") query_tid = obj["tid"].number;
    if (cat == "bg") {
      bg_tid = obj["tid"].number;
      if (obj["name"].str == "bg_flush") saw_bg_flush = true;
    }
  }
  // Query spans and background-job spans render on distinct thread tracks.
  EXPECT_GE(query_tid, 0.0);
  EXPECT_GE(bg_tid, 0.0);
  EXPECT_NE(query_tid, bg_tid);
  EXPECT_TRUE(saw_bg_flush);
}

TEST_F(RecorderSqlTest, HammerConcurrentWritersAndShowQueriesReaders) {
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.set_capacity_bytes(64 * 1024);
  recorder.set_trace_sample_every(2);

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < 200; ++i) {
        RecordedEvent event =
            QueryEvent("hammer w" + std::to_string(w) + " i" +
                       std::to_string(i));
        if (recorder.ShouldSampleTrace()) {
          auto trace = std::make_shared<Trace>("query");
          { TraceSpan span(trace.get(), "m4_lsm"); }
          trace->root().millis = 0.1;
          event.trace = std::move(trace);
          event.sampled = true;
        }
        recorder.Record(std::move(event));
      }
    });
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([this, &recorder, &done] {
      while (!done.load(std::memory_order_relaxed)) {
        auto shown = sql::ExecuteQuery(db_.get(), "SHOW QUERIES", nullptr);
        EXPECT_TRUE(shown.ok());
        (void)recorder.Snapshot(16);
        (void)recorder.bytes();
        (void)recorder.ProfileSnapshot();
        (void)recorder.DumpChromeTrace();
      }
    });
  }
  // A knob-toggling thread races the writers' eviction and sampling loads.
  readers.emplace_back([&recorder, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      recorder.set_capacity_bytes(32 * 1024);
      recorder.set_capacity_bytes(64 * 1024);
      recorder.set_trace_sample_every(3);
      recorder.set_trace_sample_every(2);
    }
  });

  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(recorder.event_count(), 0u);
  EXPECT_GT(recorder.bytes(), 0u);
}

}  // namespace
}  // namespace tsviz::obs
