#include "m4/span.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace tsviz {
namespace {

TEST(M4QueryTest, Validation) {
  EXPECT_OK((M4Query{0, 100, 4}.Validate()));
  EXPECT_EQ((M4Query{0, 100, 0}.Validate().code()),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((M4Query{0, 100, -3}.Validate().code()),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((M4Query{100, 100, 4}.Validate().code()),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((M4Query{100, 50, 4}.Validate().code()),
            StatusCode::kInvalidArgument);
}

TEST(SpanSetTest, EvenDivision) {
  SpanSet spans(M4Query{0, 100, 4});
  EXPECT_EQ(spans.num_spans(), 4);
  EXPECT_EQ(spans.SpanStart(0), 0);
  EXPECT_EQ(spans.SpanStart(1), 25);
  EXPECT_EQ(spans.SpanStart(4), 100);
  EXPECT_EQ(spans.SpanRange(0), TimeRange(0, 24));
  EXPECT_EQ(spans.SpanRange(3), TimeRange(75, 99));
  EXPECT_EQ(spans.IndexOf(0), 0);
  EXPECT_EQ(spans.IndexOf(24), 0);
  EXPECT_EQ(spans.IndexOf(25), 1);
  EXPECT_EQ(spans.IndexOf(99), 3);
}

TEST(SpanSetTest, UnevenDivisionMatchesFloorFormula) {
  // 10 timestamps into 3 spans: floor(3*t/10).
  SpanSet spans(M4Query{0, 10, 3});
  for (Timestamp t = 0; t < 10; ++t) {
    EXPECT_EQ(spans.IndexOf(t), 3 * t / 10) << "t=" << t;
  }
}

TEST(SpanSetTest, RangeShorterThanSpanCount) {
  // More pixel columns than timestamps: some spans are empty (length 0
  // after rounding) and must never claim a timestamp.
  SpanSet spans(M4Query{0, 5, 10});
  for (Timestamp t = 0; t < 5; ++t) {
    int64_t idx = spans.IndexOf(t);
    TimeRange range = spans.SpanRange(idx);
    EXPECT_TRUE(range.Contains(t)) << "t=" << t;
  }
}

TEST(SpanSetTest, NegativeTimestamps) {
  SpanSet spans(M4Query{-100, 100, 4});
  EXPECT_EQ(spans.IndexOf(-100), 0);
  EXPECT_EQ(spans.IndexOf(-1), 1);
  EXPECT_EQ(spans.IndexOf(0), 2);
  EXPECT_EQ(spans.IndexOf(99), 3);
  EXPECT_EQ(spans.SpanStart(0), -100);
  EXPECT_EQ(spans.SpanStart(4), 100);
}

TEST(SpanSetTest, InQueryRangeIsHalfOpen) {
  SpanSet spans(M4Query{10, 20, 2});
  EXPECT_TRUE(spans.InQueryRange(10));
  EXPECT_TRUE(spans.InQueryRange(19));
  EXPECT_FALSE(spans.InQueryRange(20));
  EXPECT_FALSE(spans.InQueryRange(9));
}

TEST(SpanSetTest, LargeValuesDoNotOverflow) {
  // Microsecond timestamps over a year with 10k spans: products exceed
  // 64 bits without the 128-bit arithmetic.
  Timestamp start = 1600000000000000;
  Timestamp end = start + 31536000000000;  // one year in us
  SpanSet spans(M4Query{start, end, 10000});
  EXPECT_EQ(spans.IndexOf(start), 0);
  EXPECT_EQ(spans.IndexOf(end - 1), 9999);
  EXPECT_EQ(spans.SpanStart(10000), end);
  for (int64_t i = 0; i < 10000; i += 997) {
    TimeRange range = spans.SpanRange(i);
    EXPECT_EQ(spans.IndexOf(range.start), i);
    EXPECT_EQ(spans.IndexOf(range.end), i);
  }
}

// Property: spans partition the query range — every timestamp belongs to
// exactly the span whose range contains it, and consecutive ranges tile
// without gaps or overlap.
class SpanPartitionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpanPartitionProperty, SpansPartitionTheRange) {
  Rng rng(GetParam());
  Timestamp tqs = rng.Uniform(-1000000, 1000000);
  Timestamp len = rng.Uniform(1, 100000);
  int64_t w = rng.Uniform(1, 300);
  SpanSet spans(M4Query{tqs, tqs + len, w});

  EXPECT_EQ(spans.SpanStart(0), tqs);
  EXPECT_EQ(spans.SpanStart(w), tqs + len);
  for (int64_t i = 1; i <= w; ++i) {
    EXPECT_GE(spans.SpanStart(i), spans.SpanStart(i - 1));
  }
  // Sampled timestamps: index and range agree.
  for (int trial = 0; trial < 300; ++trial) {
    Timestamp t = tqs + rng.Uniform(0, len - 1);
    int64_t idx = spans.IndexOf(t);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, w);
    EXPECT_TRUE(spans.SpanRange(idx).Contains(t))
        << "seed " << GetParam() << " t=" << t;
    if (idx > 0) {
      EXPECT_FALSE(spans.SpanRange(idx - 1).Contains(t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanPartitionProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{26}));

}  // namespace
}  // namespace tsviz
