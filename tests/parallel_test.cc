#include "m4/parallel.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "test_util.h"
#include "workload/generator.h"
#include "workload/ooo.h"

namespace tsviz {
namespace {

StoreConfig TestConfig(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 100;
  config.memtable_flush_threshold = 100;
  config.encoding.page_size_points = 25;
  return config;
}

TEST(ParallelTest, RejectsBadThreadCount) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  EXPECT_FALSE(
      RunM4LsmParallel(*store, M4Query{0, 100, 4}, 0, nullptr).ok());
}

TEST(ParallelTest, OneThreadEqualsSerial) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(500, 0, 10)));
  ASSERT_OK(store->Flush());
  M4Query query{0, 5000, 17};
  ASSERT_OK_AND_ASSIGN(M4Result serial, RunM4Lsm(*store, query, nullptr));
  ASSERT_OK_AND_ASSIGN(M4Result parallel,
                       RunM4LsmParallel(*store, query, 1, nullptr));
  EXPECT_TRUE(ResultsEquivalent(serial, parallel));
}

TEST(ParallelTest, MoreThreadsThanSpans) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(300, 0, 10)));
  ASSERT_OK(store->Flush());
  M4Query query{0, 3000, 3};
  ASSERT_OK_AND_ASSIGN(M4Result serial, RunM4Lsm(*store, query, nullptr));
  ASSERT_OK_AND_ASSIGN(M4Result parallel,
                       RunM4LsmParallel(*store, query, 16, nullptr));
  EXPECT_TRUE(ResultsEquivalent(serial, parallel))
      << FirstMismatch(serial, parallel);
}

TEST(ParallelTest, StatsAreAggregated) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(1000, 0, 10)));
  ASSERT_OK(store->Flush());
  ASSERT_OK(store->DeleteRange(TimeRange(100, 300)));
  M4Query query{0, 10000, 64};
  QueryStats stats;
  ASSERT_OK(RunM4LsmParallel(*store, query, 4, &stats).status());
  EXPECT_GT(stats.metadata_reads, 0u);
  EXPECT_GT(stats.candidate_rounds, 0u);
}

// Exact (bit-for-bit) row equality, stricter than ResultsEquivalent: the
// pooled operator must pick the *same* BP/TP points as the serial one, not
// merely value-equivalent ones, because span blocks never share state.
bool BitIdentical(const M4Result& a, const M4Result& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].has_data != b[i].has_data) return false;
    if (!a[i].has_data) continue;
    if (!(a[i].first == b[i].first && a[i].last == b[i].last &&
          a[i].bottom == b[i].bottom && a[i].top == b[i].top)) {
      return false;
    }
  }
  return true;
}

TEST(ParallelTest, PooledResultBitIdenticalToSerial) {
  Rng rng(42);
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  DatasetSpec spec;
  spec.kind = DatasetKind::kKob;
  spec.num_points = 10000;
  spec.seed = 42;
  std::vector<Point> points = GenerateDataset(spec);
  std::vector<Point> arrivals = MakeOverlappingOrder(points, 100, 0.3, &rng);
  ASSERT_OK(store->WriteAll(arrivals));
  ASSERT_OK(store->Flush());
  ASSERT_OK(store->DeleteRange(TimeRange(points[2000].t, points[2600].t)));
  TimeRange data = store->DataInterval();

  for (int64_t w : {11, 128}) {
    M4Query query{data.start, data.end + 1, w};
    ASSERT_OK_AND_ASSIGN(M4Result serial, RunM4Lsm(*store, query, nullptr));
    for (int threads : {1, 2, 4, 7}) {
      ASSERT_OK_AND_ASSIGN(M4Result pooled,
                           RunM4LsmParallel(*store, query, threads, nullptr));
      ASSERT_TRUE(BitIdentical(serial, pooled))
          << "w=" << w << " threads=" << threads << ": "
          << FirstMismatch(serial, pooled);
    }
  }
}

TEST(ParallelTest, PoolReportsSubmittedBlocks) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(500, 0, 10)));
  ASSERT_OK(store->Flush());
  uint64_t before = ExecutorPool().tasks_submitted();
  ASSERT_OK(
      RunM4LsmParallel(*store, M4Query{0, 5000, 16}, 4, nullptr).status());
  EXPECT_EQ(ExecutorPool().tasks_submitted(), before + 4);
}

class ParallelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelProperty, MatchesSerialOnMessyStores) {
  Rng rng(GetParam());
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));

  DatasetSpec spec;
  spec.kind = static_cast<DatasetKind>(GetParam() % 4);
  spec.num_points = 20000;
  spec.seed = GetParam();
  std::vector<Point> points = GenerateDataset(spec);
  std::vector<Point> arrivals =
      MakeOverlappingOrder(points, 100, 0.25, &rng);
  ASSERT_OK(store->WriteAll(arrivals));
  ASSERT_OK(store->Flush());
  TimeRange data = store->DataInterval();
  ASSERT_OK(store->DeleteRange(
      TimeRange(points[500].t, points[900].t)));

  for (int64_t w : {7, 64, 501}) {
    M4Query query{data.start, data.end + 1, w};
    ASSERT_OK_AND_ASSIGN(M4Result serial, RunM4Lsm(*store, query, nullptr));
    for (int threads : {2, 3, 8}) {
      ASSERT_OK_AND_ASSIGN(
          M4Result parallel,
          RunM4LsmParallel(*store, query, threads, nullptr));
      ASSERT_TRUE(ResultsEquivalent(serial, parallel))
          << "seed " << GetParam() << " w=" << w << " threads=" << threads
          << ": " << FirstMismatch(serial, parallel);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace tsviz
