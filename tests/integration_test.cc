// End-to-end flows combining workload generation, the LSM store, both M4
// operators, and the rasterizer — the pipeline every experiment runs.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "m4/m4_lsm.h"
#include "m4/m4_udf.h"
#include "m4/reference.h"
#include "read/series_reader.h"
#include "test_util.h"
#include "viz/pixel_diff.h"
#include "viz/rasterize.h"
#include "workload/deletes.h"
#include "workload/generator.h"
#include "workload/ooo.h"

namespace tsviz {
namespace {

StoreConfig SmallChunks(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 500;
  config.memtable_flush_threshold = 500;
  config.encoding.page_size_points = 100;
  return config;
}

class DatasetPipeline : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(DatasetPipeline, GenerateStoreQueryAgree) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(SmallChunks(dir.path())));
  DatasetSpec spec;
  spec.kind = GetParam();
  spec.num_points = 20000;
  std::vector<Point> points = GenerateDataset(spec);

  // Out-of-order arrival with 20% chunk overlap plus a delete workload.
  Rng rng(9);
  ASSERT_OK(store->WriteAll(MakeOverlappingOrder(points, 500, 0.2, &rng)));
  ASSERT_OK(store->Flush());
  DeleteWorkloadSpec del_spec;
  del_spec.delete_fraction = 0.2;
  ASSERT_OK(ApplyDeleteWorkload(store.get(), del_spec));

  // w well below the chunk count, so most chunks sit entirely inside one
  // span and can be answered from metadata.
  TimeRange data = store->DataInterval();
  M4Query query{data.start, data.end + 1, 13};

  QueryStats udf_stats;
  QueryStats lsm_stats;
  ASSERT_OK_AND_ASSIGN(M4Result udf, RunM4Udf(*store, query, &udf_stats));
  ASSERT_OK_AND_ASSIGN(M4Result lsm, RunM4Lsm(*store, query, &lsm_stats));
  EXPECT_TRUE(ResultsEquivalent(udf, lsm)) << FirstMismatch(udf, lsm);
  EXPECT_EQ(ValidateResultInvariants(lsm), "");

  // The merge-free operator must do strictly less I/O than the baseline.
  EXPECT_EQ(udf_stats.chunks_loaded, store->chunks().size());
  EXPECT_LT(lsm_stats.chunks_loaded, udf_stats.chunks_loaded);
  EXPECT_LT(lsm_stats.bytes_read, udf_stats.bytes_read);
  EXPECT_LT(lsm_stats.points_scanned, udf_stats.points_scanned);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, DatasetPipeline, ::testing::ValuesIn(AllDatasetKinds()),
    [](const ::testing::TestParamInfo<DatasetKind>& info) {
      return DatasetName(info.param);
    });

TEST(IntegrationTest, M4LsmResultRendersPixelExactly) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(SmallChunks(dir.path())));
  DatasetSpec spec;
  spec.kind = DatasetKind::kMf03;
  spec.num_points = 30000;
  std::vector<Point> points = GenerateDataset(spec);
  ASSERT_OK(store->WriteAll(points));
  ASSERT_OK(store->Flush());

  TimeRange data = store->DataInterval();
  const int width = 200;
  const int height = 150;
  M4Query query{data.start, data.end + 1, width};
  ASSERT_OK_AND_ASSIGN(M4Result rows, RunM4Lsm(*store, query, nullptr));

  ASSERT_OK_AND_ASSIGN(std::vector<Point> merged,
                       ReadMergedSeries(*store, data, nullptr));
  CanvasSpec canvas = FitCanvas(merged, query, width, height);
  Bitmap ground_truth = RasterizeSeries(merged, canvas);
  Bitmap rendered = RasterizeM4(rows, canvas);
  PixelAccuracyReport report = ComparePixels(ground_truth, rendered);
  EXPECT_EQ(report.differing_pixels, 0u) << report.ToString();
  EXPECT_GT(report.ground_truth_lit, 0u);
}

TEST(IntegrationTest, RecoveredStoreServesIdenticalResults) {
  TempDir dir;
  M4Result before;
  M4Query query{0, 0, 50};
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(SmallChunks(dir.path())));
    DatasetSpec spec;
    spec.kind = DatasetKind::kKob;
    spec.num_points = 10000;
    std::vector<Point> points = GenerateDataset(spec);
    ASSERT_OK(store->WriteAll(points));
    ASSERT_OK(store->Flush());
    ASSERT_OK(store->DeleteRange(TimeRange(points[100].t, points[400].t)));
    TimeRange data = store->DataInterval();
    query.tqs = data.start;
    query.tqe = data.end + 1;
    ASSERT_OK_AND_ASSIGN(before, RunM4Lsm(*store, query, nullptr));
  }
  // Reopen from disk and re-run.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(SmallChunks(dir.path())));
  ASSERT_OK_AND_ASSIGN(M4Result after, RunM4Lsm(*store, query, nullptr));
  EXPECT_TRUE(ResultsEquivalent(before, after))
      << FirstMismatch(before, after);
}

// The paper's headline configuration at reduced scale: a long regular
// series visualized in 1000 pixel columns. The merge-free operator must
// decode a small fraction of the baseline's pages.
TEST(IntegrationTest, HeadlineThousandColumns) {
  TempDir dir;
  StoreConfig config;
  config.data_dir = dir.path();
  config.points_per_chunk = 50;
  config.memtable_flush_threshold = 50;
  config.encoding.page_size_points = 50;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(std::move(config)));
  DatasetSpec spec;
  spec.kind = DatasetKind::kMf03;
  spec.num_points = 200000;  // 4000 chunks, ~4 per pixel column
  ASSERT_OK(store->WriteAll(GenerateDataset(spec)));
  ASSERT_OK(store->Flush());

  TimeRange data = store->DataInterval();
  M4Query query{data.start, data.end + 1, 1000};
  QueryStats udf_stats;
  QueryStats lsm_stats;
  ASSERT_OK_AND_ASSIGN(M4Result udf, RunM4Udf(*store, query, &udf_stats));
  ASSERT_OK_AND_ASSIGN(M4Result lsm, RunM4Lsm(*store, query, &lsm_stats));
  EXPECT_TRUE(ResultsEquivalent(udf, lsm)) << FirstMismatch(udf, lsm);
  // Most rows populated (transmission stalls can empty a few columns).
  size_t populated = 0;
  for (const M4Row& row : lsm) populated += row.has_data ? 1 : 0;
  EXPECT_GT(populated, lsm.size() * 3 / 4);
  // With ~4 chunks per span only the boundary chunks split: the operator
  // must stay well under the baseline's full decode.
  EXPECT_LT(lsm_stats.pages_decoded, udf_stats.pages_decoded / 2);
  EXPECT_LT(lsm_stats.bytes_read, udf_stats.bytes_read / 2);
}

TEST(IntegrationTest, HigherWLoadsMoreChunksForLsm) {
  // The Figure 10 mechanism: more spans -> more chunks split by span
  // boundaries -> more loads for M4-LSM, while M4-UDF is flat.
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(SmallChunks(dir.path())));
  DatasetSpec spec;
  spec.kind = DatasetKind::kBallSpeed;
  spec.num_points = 50000;
  ASSERT_OK(store->WriteAll(GenerateDataset(spec)));
  ASSERT_OK(store->Flush());
  TimeRange data = store->DataInterval();

  uint64_t loads_small_w = 0;
  uint64_t loads_large_w = 0;
  uint64_t udf_small = 0;
  uint64_t udf_large = 0;
  {
    QueryStats stats;
    ASSERT_OK(
        RunM4Lsm(*store, M4Query{data.start, data.end + 1, 10}, &stats)
            .status());
    loads_small_w = stats.chunks_loaded;
  }
  {
    QueryStats stats;
    ASSERT_OK(
        RunM4Lsm(*store, M4Query{data.start, data.end + 1, 80}, &stats)
            .status());
    loads_large_w = stats.chunks_loaded;
  }
  {
    QueryStats stats;
    ASSERT_OK(
        RunM4Udf(*store, M4Query{data.start, data.end + 1, 10}, &stats)
            .status());
    udf_small = stats.chunks_loaded;
  }
  {
    QueryStats stats;
    ASSERT_OK(
        RunM4Udf(*store, M4Query{data.start, data.end + 1, 80}, &stats)
            .status());
    udf_large = stats.chunks_loaded;
  }
  EXPECT_LT(loads_small_w, loads_large_w);
  EXPECT_EQ(udf_small, udf_large);  // baseline loads everything regardless
  EXPECT_LT(loads_large_w, udf_large);
}

}  // namespace
}  // namespace tsviz
