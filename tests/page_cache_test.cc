#include "storage/page_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "m4/m4_lsm.h"
#include "test_util.h"

namespace tsviz {
namespace {

SharedPageCache::PagePtr MakePage(int n) {
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    points.push_back(Point{i, static_cast<double>(i)});
  }
  return std::make_shared<const std::vector<Point>>(std::move(points));
}

TEST(SharedPageCacheTest, LookupAfterInsertHits) {
  SharedPageCache cache(1 << 20);
  SharedPageCache::PageKey key{1, 0, 0};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  cache.Insert(key, MakePage(10));
  SharedPageCache::PagePtr page = cache.Lookup(key);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->size(), 10u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SharedPageCacheTest, ByteBoundEvictsLeastRecentlyUsed) {
  // Three ~small pages fit, the byte budget holds two of them plus slack.
  const size_t page_bytes = 100 * sizeof(Point);
  SharedPageCache cache(2 * (page_bytes + 200));
  cache.Insert({1, 0, 0}, MakePage(100));
  cache.Insert({1, 0, 1}, MakePage(100));
  ASSERT_NE(cache.Lookup({1, 0, 0}), nullptr);  // bump 0 to most-recent
  cache.Insert({1, 0, 2}, MakePage(100));       // evicts page 1 (LRU tail)
  EXPECT_NE(cache.Lookup({1, 0, 0}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 0, 1}), nullptr);
  EXPECT_NE(cache.Lookup({1, 0, 2}), nullptr);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_LE(cache.size_bytes(), cache.capacity_bytes());
}

TEST(SharedPageCacheTest, EvictionNeverInvalidatesHeldPages) {
  SharedPageCache cache(1);  // evicts everything immediately after insert
  SharedPageCache::PageKey key{1, 0, 0};
  cache.Insert(key, MakePage(50));
  // Capacity 1 byte cannot hold the entry, but a pinned shared_ptr from an
  // earlier lookup must stay valid regardless of eviction.
  SharedPageCache cache2(1 << 20);
  cache2.Insert(key, MakePage(50));
  SharedPageCache::PagePtr pinned = cache2.Lookup(key);
  ASSERT_NE(pinned, nullptr);
  cache2.Clear();
  EXPECT_EQ(pinned->size(), 50u);  // still alive
}

TEST(SharedPageCacheTest, ZeroCapacityDisablesCaching) {
  SharedPageCache cache(0);
  cache.Insert({1, 0, 0}, MakePage(10));
  EXPECT_EQ(cache.Lookup({1, 0, 0}), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(SharedPageCacheTest, EraseAndEvictFile) {
  SharedPageCache cache(1 << 20);
  cache.Insert({1, 0, 0}, MakePage(10));
  cache.Insert({1, 64, 0}, MakePage(10));
  cache.Insert({2, 0, 0}, MakePage(10));
  cache.Erase({1, 0, 0});
  EXPECT_EQ(cache.Lookup({1, 0, 0}), nullptr);
  cache.EvictFile(1);
  EXPECT_EQ(cache.Lookup({1, 64, 0}), nullptr);
  EXPECT_NE(cache.Lookup({2, 0, 0}), nullptr);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(SharedPageCacheTest, ShrinkingCapacityEvictsImmediately) {
  SharedPageCache cache(1 << 20);
  for (uint32_t i = 0; i < 8; ++i) {
    cache.Insert({1, 0, i}, MakePage(100));
  }
  EXPECT_EQ(cache.entries(), 8u);
  cache.set_capacity_bytes(100 * sizeof(Point) + 200);
  EXPECT_LE(cache.entries(), 1u);
  EXPECT_LE(cache.size_bytes(), cache.capacity_bytes());
}

// Closing a store's files must evict their pages from the process cache:
// the (file id, offset, page) triples no longer exist.
TEST(SharedPageCacheTest, ClosingStoreEvictsItsPages) {
  SharedPageCache& cache = SharedPageCache::Instance();
  cache.Clear();
  TempDir dir;
  StoreConfig config;
  config.data_dir = dir.path();
  config.points_per_chunk = 100;
  config.memtable_flush_threshold = 100;
  config.encoding.page_size_points = 25;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(config));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(500, 0, 10)));
  ASSERT_OK(store->Flush());
  ASSERT_OK(RunM4Lsm(*store, M4Query{0, 5000, 50}, nullptr).status());
  EXPECT_GT(cache.entries(), 0u);
  store.reset();  // destroys the FileReaders
  EXPECT_EQ(cache.entries(), 0u);
}

// Multi-threaded hammer over a small key space and a tight byte budget, so
// inserts, hits, LRU bumps, erases and evictions all race. Run under the
// tsan preset this is the concurrency safety net for the shared cache.
TEST(SharedPageCacheTest, ConcurrentHammer) {
  SharedPageCache cache(40 * (16 * sizeof(Point) + 128));
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  constexpr uint32_t kKeySpace = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      uint64_t state = static_cast<uint64_t>(t) * 2654435761u + 1;
      for (int i = 0; i < kOps; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        uint32_t page = static_cast<uint32_t>(state >> 33) % kKeySpace;
        SharedPageCache::PageKey key{1 + page % 3, (page / 3) * 64, page};
        switch ((state >> 20) % 8) {
          case 0:
            cache.Insert(key, MakePage(16));
            break;
          case 1:
            cache.Erase(key);
            break;
          case 2:
            cache.EvictFile(1 + page % 3);
            break;
          case 3:
            cache.set_capacity_bytes((20 + page) *
                                     (16 * sizeof(Point) + 128));
            break;
          default: {
            SharedPageCache::PagePtr p = cache.Lookup(key);
            if (p != nullptr) {
              // Touch the data; tsan flags it if eviction freed it.
              volatile size_t n = p->size();
              (void)n;
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.size_bytes(),
            cache.capacity_bytes() + 64 * (16 * sizeof(Point) + 128));
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

// Concurrent queries against one store share decoded pages: total disk
// decodes stay bounded while every query sees correct results.
TEST(SharedPageCacheTest, ConcurrentQueriesShareDecodes) {
  SharedPageCache& cache = SharedPageCache::Instance();
  cache.Clear();
  TempDir dir;
  StoreConfig config;
  config.data_dir = dir.path();
  config.points_per_chunk = 100;
  config.memtable_flush_threshold = 100;
  config.encoding.page_size_points = 25;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(config));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(2000, 0, 10)));
  ASSERT_OK(store->Flush());
  M4Query query{0, 20000, 100};
  ASSERT_OK_AND_ASSIGN(M4Result expected, RunM4Lsm(*store, query, nullptr));

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        Result<M4Result> got = RunM4Lsm(*store, query, nullptr);
        if (!got.ok() || !ResultsEquivalent(expected, got.value())) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace tsviz
