#include "m4/cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "test_util.h"

namespace tsviz {
namespace {

StoreConfig TestConfig(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 50;
  config.memtable_flush_threshold = 50;
  return config;
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = TsStore::Open(TestConfig(dir_.path()));
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
    ASSERT_OK(store_->WriteAll(MakeLinearSeries(500, 0, 10)));
    ASSERT_OK(store_->Flush());
  }

  TempDir dir_;
  std::unique_ptr<TsStore> store_;
};

TEST_F(CacheTest, HitAvoidsAllIo) {
  M4QueryCache cache(8);
  M4Query query{0, 5000, 7};
  QueryStats first_stats;
  ASSERT_OK_AND_ASSIGN(M4Result first,
                       cache.GetOrCompute(*store_, query, &first_stats));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_GT(first_stats.metadata_reads, 0u);

  QueryStats second_stats;
  ASSERT_OK_AND_ASSIGN(M4Result second,
                       cache.GetOrCompute(*store_, query, &second_stats));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(second_stats.metadata_reads, 0u);  // untouched on a hit
  EXPECT_EQ(second_stats.bytes_read, 0u);
  EXPECT_TRUE(ResultsEquivalent(first, second));
}

TEST_F(CacheTest, DifferentGeometriesMissIndependently) {
  M4QueryCache cache(8);
  ASSERT_OK(
      cache.GetOrCompute(*store_, M4Query{0, 5000, 7}, nullptr).status());
  ASSERT_OK(
      cache.GetOrCompute(*store_, M4Query{0, 5000, 8}, nullptr).status());
  ASSERT_OK(
      cache.GetOrCompute(*store_, M4Query{0, 4000, 7}, nullptr).status());
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST_F(CacheTest, WritesInvalidate) {
  M4QueryCache cache(8);
  M4Query query{0, 5000, 4};
  ASSERT_OK(cache.GetOrCompute(*store_, query, nullptr).status());
  // A new flush changes the answer; the stale entry must not be served.
  ASSERT_OK(store_->Write(100, 99999.0));
  ASSERT_OK(store_->Flush());
  ASSERT_OK_AND_ASSIGN(M4Result fresh,
                       cache.GetOrCompute(*store_, query, nullptr));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(fresh[0].top.v, 99999.0);
}

TEST_F(CacheTest, DeletesAndCompactionInvalidate) {
  M4QueryCache cache(8);
  M4Query query{0, 5000, 4};
  ASSERT_OK(cache.GetOrCompute(*store_, query, nullptr).status());
  ASSERT_OK(store_->DeleteRange(TimeRange(0, 1000)));
  ASSERT_OK_AND_ASSIGN(M4Result after_delete,
                       cache.GetOrCompute(*store_, query, nullptr));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_GT(after_delete[0].first.t, 1000);
  ASSERT_OK(store_->Compact());
  ASSERT_OK(cache.GetOrCompute(*store_, query, nullptr).status());
  EXPECT_EQ(cache.misses(), 3u);
}

TEST_F(CacheTest, LruEvictsOldest) {
  M4QueryCache cache(2);
  M4Query a{0, 5000, 1};
  M4Query b{0, 5000, 2};
  M4Query c{0, 5000, 3};
  ASSERT_OK(cache.GetOrCompute(*store_, a, nullptr).status());
  ASSERT_OK(cache.GetOrCompute(*store_, b, nullptr).status());
  ASSERT_OK(cache.GetOrCompute(*store_, a, nullptr).status());  // hit; bumps a
  ASSERT_OK(cache.GetOrCompute(*store_, c, nullptr).status());  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_OK(cache.GetOrCompute(*store_, a, nullptr).status());
  EXPECT_EQ(cache.hits(), 2u);  // a still cached
  ASSERT_OK(cache.GetOrCompute(*store_, b, nullptr).status());
  EXPECT_EQ(cache.misses(), 4u);  // b was evicted
}

TEST_F(CacheTest, ZeroCapacityNeverStores) {
  M4QueryCache cache(0);
  M4Query query{0, 5000, 4};
  ASSERT_OK(cache.GetOrCompute(*store_, query, nullptr).status());
  ASSERT_OK(cache.GetOrCompute(*store_, query, nullptr).status());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST_F(CacheTest, ClearDropsEverything) {
  M4QueryCache cache(8);
  M4Query query{0, 5000, 4};
  ASSERT_OK(cache.GetOrCompute(*store_, query, nullptr).status());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_OK(cache.GetOrCompute(*store_, query, nullptr).status());
  EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(CacheTest, InvalidQueryRejected) {
  M4QueryCache cache(8);
  EXPECT_FALSE(cache.GetOrCompute(*store_, M4Query{10, 5, 4}, nullptr).ok());
}

}  // namespace
}  // namespace tsviz
