#include "viz/rasterize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "m4/reference.h"
#include "test_util.h"
#include "viz/pixel_diff.h"

namespace tsviz {
namespace {

TEST(BitmapTest, SetGetAndCount) {
  Bitmap bitmap(10, 5);
  EXPECT_FALSE(bitmap.Get(3, 2));
  bitmap.Set(3, 2);
  EXPECT_TRUE(bitmap.Get(3, 2));
  bitmap.Set(3, 2);  // idempotent
  EXPECT_EQ(bitmap.CountSet(), 1u);
  // Out-of-bounds writes are ignored, reads return false.
  bitmap.Set(-1, 0);
  bitmap.Set(10, 0);
  bitmap.Set(0, 5);
  EXPECT_EQ(bitmap.CountSet(), 1u);
  EXPECT_FALSE(bitmap.Get(-1, 0));
}

TEST(BitmapTest, PgmHeaderAndPayload) {
  Bitmap bitmap(4, 2);
  bitmap.Set(0, 0);
  std::string pgm = bitmap.ToPgm();
  EXPECT_EQ(pgm.substr(0, 9), "P5\n4 2\n25");
  EXPECT_EQ(pgm.size(), std::string("P5\n4 2\n255\n").size() + 8);
  // First payload byte is black (0), the rest white (255).
  size_t payload = std::string("P5\n4 2\n255\n").size();
  EXPECT_EQ(static_cast<uint8_t>(pgm[payload]), 0);
  EXPECT_EQ(static_cast<uint8_t>(pgm[payload + 1]), 255);
}

TEST(BitmapTest, PixelDiffCounts) {
  Bitmap a(8, 8);
  Bitmap b(8, 8);
  EXPECT_EQ(PixelDiff(a, b), 0u);
  a.Set(1, 1);
  b.Set(2, 2);
  EXPECT_EQ(PixelDiff(a, b), 2u);
  PixelAccuracyReport report = ComparePixels(a, b);
  EXPECT_EQ(report.differing_pixels, 2u);
  EXPECT_EQ(report.total_pixels, 64u);
  EXPECT_NEAR(report.ErrorRatio(), 2.0 / 64.0, 1e-12);
}

TEST(RasterizeTest, HorizontalLineLightsOneRowPerColumn) {
  std::vector<Point> points = MakeSeries(100, 0, 10, [](size_t) {
    return 5.0;
  });
  M4Query query{0, 1000, 10};
  CanvasSpec spec = FitCanvas(points, query, 10, 8);
  Bitmap bitmap = RasterizeSeries(points, spec);
  for (int x = 0; x < 10; ++x) {
    int lit = 0;
    for (int y = 0; y < 8; ++y) lit += bitmap.Get(x, y) ? 1 : 0;
    EXPECT_EQ(lit, 1) << "column " << x;
  }
}

TEST(RasterizeTest, VerticalJumpFillsTheColumn) {
  // Two points in the same column at value extremes: the connecting line is
  // vertical, so the whole column between them lights up.
  std::vector<Point> points = {{0, 0.0}, {5, 10.0}};
  CanvasSpec spec{1, 10, 0, 10, 0.0, 10.0};
  Bitmap bitmap = RasterizeSeries(points, spec);
  for (int y = 0; y < 10; ++y) {
    EXPECT_TRUE(bitmap.Get(0, y)) << "row " << y;
  }
}

TEST(RasterizeTest, M4RepresentationIsPixelExact) {
  // The core M4 guarantee (Figure 1): rendering the 4w representation points
  // equals rendering the full series, pixel for pixel, when the column count
  // matches w.
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Point> points;
    Timestamp t = 0;
    double v = 0;
    size_t n = static_cast<size_t>(rng.Uniform(200, 3000));
    for (size_t i = 0; i < n; ++i) {
      points.push_back(Point{t, v});
      t += rng.Uniform(1, 20);
      v += rng.Gaussian(0, 5);
    }
    M4Query query{0, t + 1, static_cast<int64_t>(rng.Uniform(5, 120))};
    M4Result rows = ReferenceM4(points, query);

    CanvasSpec spec = FitCanvas(points, query,
                                static_cast<int>(query.w),
                                static_cast<int>(rng.Uniform(20, 200)));
    Bitmap full = RasterizeSeries(points, spec);
    Bitmap reduced = RasterizeM4(rows, spec);
    EXPECT_EQ(PixelDiff(full, reduced), 0u) << "trial " << trial;
  }
}

TEST(RasterizeTest, MinMaxRepresentationIsNotPixelExact) {
  // A series whose inter-column segments depend on first/last points that
  // MinMax discards.
  Rng rng(23);
  std::vector<Point> points;
  Timestamp t = 0;
  for (int i = 0; i < 2000; ++i) {
    points.push_back(Point{t, rng.Gaussian(0, 10)});
    t += rng.Uniform(1, 10);
  }
  M4Query query{0, t + 1, 50};
  CanvasSpec spec = FitCanvas(points, query, 50, 100);
  Bitmap full = RasterizeSeries(points, spec);
  Bitmap minmax = RasterizeM4(MinMaxRepresentation(points, query), spec);
  Bitmap sampled =
      RasterizeM4(SampledRepresentation(points, query, 10), spec);
  EXPECT_GT(PixelDiff(full, minmax), 0u);
  EXPECT_GT(PixelDiff(full, sampled), 0u);
  // But MinMax is still closer to the truth than crude sampling.
  EXPECT_LT(PixelDiff(full, minmax), PixelDiff(full, sampled));
}

TEST(RasterizeTest, M4PolylineDeduplicatesSharedPoints) {
  M4Row row;
  row.has_data = true;
  row.first = row.bottom = {10, 1.0};  // first is also the bottom
  row.top = {20, 5.0};
  row.last = {30, 2.0};
  std::vector<Point> polyline = M4Polyline({row});
  EXPECT_EQ(polyline.size(), 3u);
  EXPECT_EQ(polyline[0].t, 10);
  EXPECT_EQ(polyline[1].t, 20);
  EXPECT_EQ(polyline[2].t, 30);
}

TEST(RasterizeTest, EmptyRowsProduceEmptyPolyline) {
  EXPECT_TRUE(M4Polyline({M4Row{}, M4Row{}}).empty());
}

TEST(RasterizeTest, FitCanvasIgnoresOutOfRangePoints) {
  std::vector<Point> points = {{-5, 1000.0}, {5, 1.0}, {6, 2.0},
                               {100, -1000.0}};
  CanvasSpec spec = FitCanvas(points, M4Query{0, 10, 2}, 2, 10);
  EXPECT_EQ(spec.vmin, 1.0);
  EXPECT_EQ(spec.vmax, 2.0);
}

TEST(RasterizeTest, ConstantValueDomainRendersMidBand) {
  std::vector<Point> points = MakeSeries(10, 0, 1, [](size_t) {
    return 7.0;
  });
  CanvasSpec spec = FitCanvas(points, M4Query{0, 10, 5}, 5, 9);
  EXPECT_EQ(spec.vmin, spec.vmax);
  Bitmap bitmap = RasterizeSeries(points, spec);
  EXPECT_GT(bitmap.CountSet(), 0u);
}

TEST(RasterizeTest, AsciiRendering) {
  Bitmap bitmap(4, 2);
  bitmap.Set(0, 0);
  bitmap.Set(3, 1);
  EXPECT_EQ(bitmap.ToAscii(), "#...\n...#\n");
}

}  // namespace
}  // namespace tsviz
