#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "test_util.h"

namespace tsviz {
namespace {

// Blocking line-protocol client for the tests.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& line) {
    std::string data = line + "\n";
    ASSERT_EQ(::send(fd_, data.data(), data.size(), 0),
              static_cast<ssize_t>(data.size()));
  }

  // Reads until the blank-line terminator; returns the payload without it.
  // Pipelined replies may share one recv, so leftover bytes stay buffered
  // for the next call.
  std::string ReadReply() {
    char chunk[4096];
    while (buffer_.find("\n\n") == std::string::npos) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        std::string rest = std::move(buffer_);
        buffer_.clear();
        return rest;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    size_t end = buffer_.find("\n\n");
    std::string reply = buffer_.substr(0, end + 1);
    buffer_.erase(0, end + 2);
    return reply;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned reply
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseConfig config;
    config.root_dir = dir_.path();
    config.series_defaults.points_per_chunk = 50;
    config.series_defaults.memtable_flush_threshold = 50;
    auto db = Database::Open(config);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(db_->Write("s1", i * 10, i * 1.0));
    }
    ASSERT_OK(db_->FlushAll());
    server_ = std::make_unique<SqlServer>(db_.get());
    ASSERT_OK(server_->Start(0));
    ASSERT_GT(server_->port(), 0);
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<SqlServer> server_;
};

TEST_F(ServerTest, AnswersSqlOverTheWire) {
  TestClient client(server_->port());
  client.Send("SELECT COUNT(v) FROM s1 GROUP BY SPANS(2)");
  std::string reply = client.ReadReply();
  EXPECT_NE(reply.find("span_start,COUNT(v)"), std::string::npos);
  EXPECT_NE(reply.find(",50"), std::string::npos);
}

TEST_F(ServerTest, MultipleQueriesOnOneConnection) {
  TestClient client(server_->port());
  client.Send("SELECT COUNT(v) FROM s1");
  std::string first = client.ReadReply();
  EXPECT_NE(first.find("100"), std::string::npos);
  client.Send("SELECT MAX_VALUE(v) FROM s1");
  std::string second = client.ReadReply();
  EXPECT_NE(second.find("99"), std::string::npos);
}

TEST_F(ServerTest, ErrorsAreReportedInBand) {
  TestClient client(server_->port());
  client.Send("SELECT FROM nothing");
  std::string reply = client.ReadReply();
  EXPECT_EQ(reply.rfind("ERROR:", 0), 0u) << reply;
  // The connection survives an error.
  client.Send("SELECT COUNT(v) FROM s1");
  EXPECT_NE(client.ReadReply().find("100"), std::string::npos);
}

TEST_F(ServerTest, ConcurrentClients) {
  TestClient a(server_->port());
  TestClient b(server_->port());
  a.Send("SELECT COUNT(v) FROM s1");
  b.Send("SELECT MIN_VALUE(v) FROM s1");
  EXPECT_NE(a.ReadReply().find("100"), std::string::npos);
  EXPECT_NE(b.ReadReply().find(",0"), std::string::npos);
}

TEST_F(ServerTest, QueriesAdvanceServerMetrics) {
  obs::Counter& queries = obs::GetCounter("server_queries_total");
  obs::Counter& errors = obs::GetCounter("server_query_errors_total");
  obs::Histogram& latency = obs::GetHistogram("server_query_millis");
  uint64_t queries_before = queries.value();
  uint64_t errors_before = errors.value();
  uint64_t latency_before = latency.count();

  TestClient client(server_->port());
  client.Send("SELECT COUNT(v) FROM s1");
  EXPECT_NE(client.ReadReply().find("100"), std::string::npos);
  client.Send("SELECT bogus FROM nowhere");
  EXPECT_EQ(client.ReadReply().rfind("ERROR:", 0), 0u);

  EXPECT_EQ(queries.value(), queries_before + 2);
  EXPECT_EQ(errors.value(), errors_before + 1);
  EXPECT_EQ(latency.count(), latency_before + 2);

  // SHOW METRICS over the wire reports the same counters as Prometheus
  // text, with the CSV header line doubling as a comment.
  client.Send("SHOW METRICS");
  std::string reply = client.ReadReply();
  EXPECT_EQ(reply.rfind("#", 0), 0u) << reply.substr(0, 60);
  EXPECT_NE(reply.find("server_queries_total"), std::string::npos);
  EXPECT_NE(reply.find("# TYPE server_query_millis histogram"),
            std::string::npos);
}

TEST_F(ServerTest, MaintenanceStatementsWorkOverTheWire) {
  // Start() bound the maintenance scheduler to the server lifecycle.
  EXPECT_TRUE(db_->maintenance().running());

  TestClient client(server_->port());
  ASSERT_OK(db_->Write("s1", 5000, 1.0));
  client.Send("FLUSH s1");
  std::string reply = client.ReadReply();
  EXPECT_NE(reply.find("series,action,status"), std::string::npos) << reply;
  EXPECT_NE(reply.find("s1,flush,OK"), std::string::npos) << reply;

  client.Send("COMPACT");
  reply = client.ReadReply();
  EXPECT_NE(reply.find("s1,compact,OK"), std::string::npos) << reply;

  client.Send("SHOW JOBS");
  reply = client.ReadReply();
  EXPECT_NE(reply.find("id,key,type,state"), std::string::npos) << reply;
  // The periodic policy tick is registered (and likely pending or running).
  EXPECT_NE(reply.find("tick"), std::string::npos) << reply;

  client.Send("SHOW SERIES");
  reply = client.ReadReply();
  EXPECT_NE(
      reply.find(
          "series,partition_interval_ms,partitions,files,chunks,data_start"),
      std::string::npos)
      << reply;
  EXPECT_NE(reply.find("s1,"), std::string::npos) << reply;

  client.Send("FLUSH no_such_series");
  EXPECT_EQ(client.ReadReply().rfind("ERROR:", 0), 0u);

  server_->Stop();
  EXPECT_FALSE(db_->maintenance().running());
}

TEST_F(ServerTest, StopIsIdempotentAndUnblocksClients) {
  TestClient client(server_->port());
  server_->Stop();
  server_->Stop();  // idempotent
  // After Stop the connection is shut down: a write may fail outright and a
  // read must terminate (empty reply), never hang.
  std::string data = "SELECT COUNT(v) FROM s1\n";
  (void)::send(client.fd(), data.data(), data.size(), MSG_NOSIGNAL);
  std::string reply = client.ReadReply();
  EXPECT_TRUE(reply.empty() || reply.rfind("ERROR", 0) == 0) << reply;
}

TEST_F(ServerTest, PipelinedStatementsInOneSendAnswerInOrder) {
  TestClient client(server_->port());
  std::string batch =
      "SELECT COUNT(v) FROM s1\n"
      "SELECT MIN_VALUE(v) FROM s1\n"
      "SELECT MAX_VALUE(v) FROM s1\n";
  ASSERT_EQ(::send(client.fd(), batch.data(), batch.size(), 0),
            static_cast<ssize_t>(batch.size()));
  EXPECT_NE(client.ReadReply().find("100"), std::string::npos);
  EXPECT_NE(client.ReadReply().find(",0"), std::string::npos);
  EXPECT_NE(client.ReadReply().find("99"), std::string::npos);
}

TEST_F(ServerTest, InsertOverTheWire) {
  TestClient client(server_->port());
  client.Send("INSERT INTO wired VALUES (10, 1.5), (20, 2.5), (30, -1)");
  std::string reply = client.ReadReply();
  EXPECT_NE(reply.find("series,points"), std::string::npos) << reply;
  EXPECT_NE(reply.find("wired,3"), std::string::npos) << reply;

  // Inserted points buffer in the memtable; FLUSH makes them queryable.
  client.Send("FLUSH wired");
  EXPECT_NE(client.ReadReply().find("wired,flush,OK"), std::string::npos);
  client.Send("SELECT COUNT(v) FROM wired");
  EXPECT_NE(client.ReadReply().find("3"), std::string::npos);
  client.Send("SELECT MAX_VALUE(v) FROM wired");
  EXPECT_NE(client.ReadReply().find("2.5"), std::string::npos);

  client.Send("INSERT INTO wired VALUES (1.5, 2)");  // non-integer timestamp
  EXPECT_EQ(client.ReadReply().rfind("ERROR:", 0), 0u);
}

TEST_F(ServerTest, MaxConnectionsRejectsWithBusyError) {
  TestClient a(server_->port());
  a.Send("SET max_connections = 1");
  EXPECT_NE(a.ReadReply().find("max_connections"), std::string::npos);

  // `a` holds the only slot; the newcomer gets the in-band busy error.
  TestClient b(server_->port());
  EXPECT_EQ(b.ReadReply(), "ERROR: server busy\n");

  a.Send("SET max_connections = 1024");  // restore for the other tests
  EXPECT_NE(a.ReadReply().find("1024"), std::string::npos);
}

TEST_F(ServerTest, NetworkKnobsAreValidated) {
  TestClient client(server_->port());
  client.Send("SET listen_backlog = 0");
  EXPECT_EQ(client.ReadReply().rfind("ERROR:", 0), 0u);
  client.Send("SET listen_backlog = -5");
  EXPECT_EQ(client.ReadReply().rfind("ERROR:", 0), 0u);
  client.Send("SET listen_backlog = 2.5");
  EXPECT_EQ(client.ReadReply().rfind("ERROR:", 0), 0u);
  client.Send("SET listen_backlog = 128");
  EXPECT_NE(client.ReadReply().find("listen_backlog,128"), std::string::npos);
  client.Send("SET max_connections = 0");
  EXPECT_EQ(client.ReadReply().rfind("ERROR:", 0), 0u);
  EXPECT_EQ(db_->listen_backlog(), 128);
}

TEST(ServerLifecycleTest, ThreadPerConnModeServesTheSameProtocol) {
  TempDir dir;
  DatabaseConfig config;
  config.root_dir = dir.path();
  auto db = Database::Open(config);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK((*db)->Write("s1", i, i * 1.0));
  }
  ASSERT_OK((*db)->FlushAll());
  SqlServer server(db->get(), ServerMode::kThreadPerConn);
  ASSERT_OK(server.Start(0));
  TestClient client(server.port());
  client.Send("SELECT COUNT(v) FROM s1");
  EXPECT_NE(client.ReadReply().find("10"), std::string::npos);
  client.Send("INSERT INTO s1 VALUES (100, 42)");
  EXPECT_NE(client.ReadReply().find("s1,1"), std::string::npos);
  server.Stop();
}

TEST(ServerLifecycleTest, StartTwiceRejected) {
  TempDir dir;
  DatabaseConfig config;
  config.root_dir = dir.path();
  auto db = Database::Open(config);
  ASSERT_TRUE(db.ok());
  SqlServer server(db->get());
  ASSERT_OK(server.Start(0));
  EXPECT_EQ(server.Start(0).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tsviz
