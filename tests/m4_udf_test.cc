#include "m4/m4_udf.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "m4/reference.h"
#include "test_util.h"

namespace tsviz {
namespace {

StoreConfig TestConfig(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 40;
  config.memtable_flush_threshold = 40;
  config.encoding.page_size_points = 16;
  return config;
}

TEST(M4UdfTest, SingleChunkBasic) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  // Values form a V within each span so bottom != first/last.
  std::vector<Point> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back(Point{i * 10, static_cast<double>((i * 7) % 13)});
  }
  ASSERT_OK(store->WriteAll(points));
  ASSERT_OK(store->Flush());

  M4Query query{0, 400, 4};
  ASSERT_OK_AND_ASSIGN(M4Result result, RunM4Udf(*store, query, nullptr));
  M4Result expected = ReferenceM4(points, query);
  EXPECT_TRUE(ResultsEquivalent(result, expected))
      << FirstMismatch(result, expected);
  EXPECT_EQ(ValidateResultInvariants(result), "");
}

TEST(M4UdfTest, InvalidQueryRejected) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  EXPECT_EQ(RunM4Udf(*store, M4Query{0, 0, 4}, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunM4Udf(*store, M4Query{0, 10, 0}, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(M4UdfTest, EmptySpansAreMarkedEmpty) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  // Data only in the second half of the query range.
  ASSERT_OK(store->WriteAll(MakeLinearSeries(40, 500, 10)));
  ASSERT_OK(store->Flush());
  M4Query query{0, 1000, 10};
  ASSERT_OK_AND_ASSIGN(M4Result result, RunM4Udf(*store, query, nullptr));
  ASSERT_EQ(result.size(), 10u);
  // Points cover [500, 890]: spans 0-4 and 9 are empty, 5-8 populated.
  for (size_t i = 0; i < 5; ++i) EXPECT_FALSE(result[i].has_data) << i;
  for (size_t i = 5; i < 9; ++i) EXPECT_TRUE(result[i].has_data) << i;
  EXPECT_FALSE(result[9].has_data);
}

TEST(M4UdfTest, QuerySubrangeExcludesOutsidePoints) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  std::vector<Point> points = MakeLinearSeries(120, 0, 10);
  ASSERT_OK(store->WriteAll(points));
  ASSERT_OK(store->Flush());
  M4Query query{300, 700, 4};
  ASSERT_OK_AND_ASSIGN(M4Result result, RunM4Udf(*store, query, nullptr));
  M4Result expected = ReferenceM4(points, query);
  EXPECT_TRUE(ResultsEquivalent(result, expected))
      << FirstMismatch(result, expected);
  // The first representation point of span 0 is exactly t=300.
  EXPECT_EQ(result[0].first.t, 300);
  EXPECT_EQ(result[3].last.t, 690);  // tqe is exclusive
}

TEST(M4UdfTest, CountsFullLoadInStats) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(400, 0, 10)));
  ASSERT_OK(store->Flush());
  ASSERT_EQ(store->chunks().size(), 10u);
  QueryStats stats;
  ASSERT_OK(RunM4Udf(*store, M4Query{0, 4000, 4}, &stats).status());
  // The UDF baseline loads and scans everything.
  EXPECT_EQ(stats.chunks_loaded, 10u);
  EXPECT_EQ(stats.points_scanned, 400u);
  EXPECT_GT(stats.bytes_read, 0u);
}

TEST(M4UdfTest, OverwritesAndDeletesRespected) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  for (int i = 0; i < 40; ++i) ASSERT_OK(store->Write(i * 10, 1.0));  // v1
  ASSERT_OK(store->DeleteRange(TimeRange(100, 150)));                 // v2
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(store->Write(200 + i * 5, 2.0));  // v3, overwrites some of v1
  }
  ASSERT_OK(store->Flush());

  M4Query query{0, 400, 2};
  ASSERT_OK_AND_ASSIGN(M4Result result, RunM4Udf(*store, query, nullptr));
  M4Result expected = ReferenceM4(
      ReferenceMerge(DumpChunks(*store), DumpDeletes(*store)), query);
  EXPECT_TRUE(ResultsEquivalent(result, expected))
      << FirstMismatch(result, expected);
}

// Property: M4-UDF over arbitrary LSM states equals the oracle pipeline
// (reference merge + reference M4 grouping).
class M4UdfProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(M4UdfProperty, MatchesOracle) {
  Rng rng(GetParam());
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  const Timestamp domain = 3000;
  int n_rounds = static_cast<int>(rng.Uniform(1, 6));
  for (int round = 0; round < n_rounds; ++round) {
    if (round > 0 && rng.Bernoulli(0.4)) {
      Timestamp start = rng.Uniform(0, domain);
      ASSERT_OK(store->DeleteRange(
          TimeRange(start, start + rng.Uniform(1, domain / 5))));
    }
    Timestamp base = rng.Uniform(0, domain / 2);
    int n = static_cast<int>(rng.Uniform(5, 150));
    for (int i = 0; i < n; ++i) {
      ASSERT_OK(store->Write(base + rng.Uniform(0, domain / 2),
                             std::round(rng.Gaussian(0, 50))));
    }
    ASSERT_OK(store->Flush());
  }

  M4Query query;
  query.tqs = rng.Uniform(-10, domain / 2);
  query.tqe = query.tqs + rng.Uniform(1, domain);
  query.w = rng.Uniform(1, 50);

  ASSERT_OK_AND_ASSIGN(M4Result result, RunM4Udf(*store, query, nullptr));
  M4Result expected = ReferenceM4(
      ReferenceMerge(DumpChunks(*store), DumpDeletes(*store)), query);
  EXPECT_TRUE(ResultsEquivalent(result, expected))
      << "seed " << GetParam() << ": " << FirstMismatch(result, expected);
  EXPECT_EQ(ValidateResultInvariants(result), "") << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, M4UdfProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{31}));

}  // namespace
}  // namespace tsviz
