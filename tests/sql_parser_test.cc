#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "test_util.h"

namespace tsviz::sql {
namespace {

TEST(LexerTest, TokenizesAllTokenKinds) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                       Tokenize("SELECT m4(v), -3.5e2 <= >= < > = (*) x_1.y"));
  std::vector<TokenType> types;
  for (const Token& t : tokens) types.push_back(t.type);
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kIdentifier, TokenType::kIdentifier,
                       TokenType::kLParen, TokenType::kIdentifier,
                       TokenType::kRParen, TokenType::kComma,
                       TokenType::kNumber, TokenType::kLessEq,
                       TokenType::kGreaterEq, TokenType::kLess,
                       TokenType::kGreater, TokenType::kEq,
                       TokenType::kLParen, TokenType::kStar,
                       TokenType::kRParen, TokenType::kIdentifier,
                       TokenType::kEnd}));
  EXPECT_DOUBLE_EQ(tokens[6].number, -350.0);
  EXPECT_EQ(tokens[15].text, "x_1.y");
}

TEST(LexerTest, RejectsGarbageCharacters) {
  EXPECT_FALSE(Tokenize("SELECT @foo").ok());
  EXPECT_FALSE(Tokenize("SELECT ;").ok());
}

TEST(LexerTest, EmptyInputIsJustEnd) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize("   "));
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(ParserTest, MinimalSelect) {
  ASSERT_OK_AND_ASSIGN(SelectStatement stmt,
                       ParseSelect("SELECT v FROM temperature"));
  ASSERT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].kind, FuncKind::kRawColumn);
  EXPECT_EQ(stmt.items[0].argument, "v");
  EXPECT_EQ(stmt.series, "temperature");
  EXPECT_TRUE(stmt.where.empty());
  EXPECT_FALSE(stmt.spans.has_value());
}

TEST(ParserTest, AppendixA1Form) {
  // The shape of the paper's Appendix A.1 SQL, modulo the GROUP BY spelling.
  ASSERT_OK_AND_ASSIGN(
      SelectStatement stmt,
      ParseSelect("SELECT FirstTime(v), FirstValue(v), LastTime(v), "
                  "LastValue(v), BottomTime(v), BottomValue(v), TopTime(v), "
                  "TopValue(v) FROM root.sg1.d1.s1 "
                  "WHERE time >= 0 AND time < 1000000 "
                  "GROUP BY SPANS(1000)"));
  ASSERT_EQ(stmt.items.size(), 8u);
  EXPECT_EQ(stmt.items[0].kind, FuncKind::kFirstTime);
  EXPECT_EQ(stmt.items[7].kind, FuncKind::kTopValue);
  EXPECT_EQ(stmt.series, "root.sg1.d1.s1");
  ASSERT_EQ(stmt.where.size(), 2u);
  EXPECT_EQ(stmt.where[0].op, TokenType::kGreaterEq);
  EXPECT_EQ(stmt.where[0].value, 0);
  EXPECT_EQ(stmt.where[1].op, TokenType::kLess);
  EXPECT_EQ(stmt.where[1].value, 1000000);
  EXPECT_EQ(stmt.spans, 1000);
}

TEST(ParserTest, M4ShorthandAndAliases) {
  ASSERT_OK_AND_ASSIGN(
      SelectStatement stmt,
      ParseSelect("select M4(v), min_value(v), MAX(v), count(*) from s "
                  "group by columns(42)"));
  ASSERT_EQ(stmt.items.size(), 4u);
  EXPECT_EQ(stmt.items[0].kind, FuncKind::kM4);
  EXPECT_EQ(stmt.items[1].kind, FuncKind::kBottomValue);
  EXPECT_EQ(stmt.items[2].kind, FuncKind::kTopValue);
  EXPECT_EQ(stmt.items[3].kind, FuncKind::kCount);
  EXPECT_EQ(stmt.items[3].argument, "*");
  EXPECT_EQ(stmt.spans, 42);
}

TEST(ParserTest, ReversedTimeConditions) {
  ASSERT_OK_AND_ASSIGN(
      SelectStatement stmt,
      ParseSelect("SELECT count(v) FROM s WHERE 10 <= time AND 100 > time"));
  ASSERT_EQ(stmt.where.size(), 2u);
  EXPECT_EQ(stmt.where[0].op, TokenType::kGreaterEq);
  EXPECT_EQ(stmt.where[0].value, 10);
  EXPECT_EQ(stmt.where[1].op, TokenType::kLess);
  EXPECT_EQ(stmt.where[1].value, 100);
}

TEST(ParserTest, ErrorsArePrecise) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT v").ok());
  EXPECT_FALSE(ParseSelect("SELECT v FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT frobnicate(v) FROM s").ok());
  // `value` conditions parse (raw-select filters); arbitrary columns don't.
  EXPECT_TRUE(ParseSelect("SELECT v FROM s WHERE value > 3").ok());
  EXPECT_FALSE(ParseSelect("SELECT v FROM s WHERE humidity > 3").ok());
  EXPECT_FALSE(ParseSelect("SELECT v FROM s GROUP BY SPANS(0)").ok());
  EXPECT_FALSE(ParseSelect("SELECT v FROM s GROUP BY SPANS(2.5)").ok());
  EXPECT_FALSE(ParseSelect("SELECT v FROM s trailing garbage").ok());
  EXPECT_FALSE(ParseSelect("SELECT min( FROM s").ok());
}

TEST(ParserTest, LimitClause) {
  ASSERT_OK_AND_ASSIGN(SelectStatement stmt,
                       ParseSelect("SELECT v FROM s LIMIT 10"));
  EXPECT_EQ(stmt.limit, 10);
  EXPECT_FALSE(ParseSelect("SELECT v FROM s LIMIT -1").ok());
  EXPECT_FALSE(ParseSelect("SELECT v FROM s LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT v FROM s LIMIT 1.5").ok());
}

TEST(ParserTest, ExplainPrefix) {
  ASSERT_OK_AND_ASSIGN(SelectStatement stmt,
                       ParseSelect("EXPLAIN SELECT COUNT(v) FROM s"));
  EXPECT_TRUE(stmt.explain);
  ASSERT_OK_AND_ASSIGN(stmt, ParseSelect("SELECT COUNT(v) FROM s"));
  EXPECT_FALSE(stmt.explain);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  ASSERT_OK_AND_ASSIGN(
      SelectStatement stmt,
      ParseSelect("sElEcT CoUnT(v) fRoM s WhErE tImE >= 5 gRoUp By SpAnS(2)"));
  EXPECT_EQ(stmt.items[0].kind, FuncKind::kCount);
  EXPECT_EQ(stmt.spans, 2);
}

TEST(StatementParserTest, FlushWithAndWithoutSeries) {
  ASSERT_OK_AND_ASSIGN(Statement stmt, ParseStatement("FLUSH"));
  ASSERT_TRUE(std::holds_alternative<FlushStatement>(stmt));
  EXPECT_FALSE(std::get<FlushStatement>(stmt).series.has_value());
  EXPECT_TRUE(IsWriteStatement(stmt));

  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("flush temperature"));
  ASSERT_TRUE(std::holds_alternative<FlushStatement>(stmt));
  EXPECT_EQ(std::get<FlushStatement>(stmt).series, "temperature");

  EXPECT_FALSE(ParseStatement("FLUSH a b").ok());
  EXPECT_FALSE(ParseStatement("FLUSH 3").ok());
}

TEST(StatementParserTest, CompactWithAndWithoutSeries) {
  ASSERT_OK_AND_ASSIGN(Statement stmt, ParseStatement("COMPACT"));
  ASSERT_TRUE(std::holds_alternative<CompactStatement>(stmt));
  EXPECT_FALSE(std::get<CompactStatement>(stmt).series.has_value());
  EXPECT_TRUE(IsWriteStatement(stmt));

  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("CoMpAcT s1"));
  ASSERT_TRUE(std::holds_alternative<CompactStatement>(stmt));
  EXPECT_EQ(std::get<CompactStatement>(stmt).series, "s1");

  EXPECT_FALSE(ParseStatement("COMPACT a b").ok());
}

TEST(StatementParserTest, ShowJobsAndShowMetrics) {
  ASSERT_OK_AND_ASSIGN(Statement stmt, ParseStatement("SHOW JOBS"));
  EXPECT_TRUE(std::holds_alternative<ShowJobsStatement>(stmt));
  EXPECT_FALSE(IsWriteStatement(stmt));

  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("show metrics"));
  EXPECT_TRUE(std::holds_alternative<ShowMetricsStatement>(stmt));

  EXPECT_FALSE(ParseStatement("SHOW").ok());
  EXPECT_FALSE(ParseStatement("SHOW TABLES").ok());
  EXPECT_FALSE(ParseStatement("SHOW JOBS please").ok());
}

TEST(StatementParserTest, ShowSeries) {
  ASSERT_OK_AND_ASSIGN(Statement stmt, ParseStatement("SHOW SERIES"));
  EXPECT_TRUE(std::holds_alternative<ShowSeriesStatement>(stmt));
  EXPECT_FALSE(IsWriteStatement(stmt));

  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("show series"));
  EXPECT_TRUE(std::holds_alternative<ShowSeriesStatement>(stmt));

  EXPECT_FALSE(ParseStatement("SHOW SERIES s1").ok());
  // The SHOW error names every supported variant.
  Status status = ParseStatement("SHOW TABLES").status();
  EXPECT_NE(status.ToString().find("SHOW SERIES"), std::string::npos);
}

TEST(StatementParserTest, ShowQueriesAndShowProfile) {
  ASSERT_OK_AND_ASSIGN(Statement stmt, ParseStatement("SHOW QUERIES"));
  EXPECT_TRUE(std::holds_alternative<ShowQueriesStatement>(stmt));
  EXPECT_FALSE(IsWriteStatement(stmt));

  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("show profile"));
  ASSERT_TRUE(std::holds_alternative<ShowProfileStatement>(stmt));
  EXPECT_FALSE(std::get<ShowProfileStatement>(stmt).reset);

  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("SHOW PROFILE RESET"));
  ASSERT_TRUE(std::holds_alternative<ShowProfileStatement>(stmt));
  EXPECT_TRUE(std::get<ShowProfileStatement>(stmt).reset);

  EXPECT_FALSE(ParseStatement("SHOW QUERIES all").ok());
  EXPECT_FALSE(ParseStatement("SHOW PROFILE now").ok());
  EXPECT_FALSE(ParseStatement("SHOW PROFILE RESET twice").ok());
  // The SHOW error names the recorder variants too.
  Status status = ParseStatement("SHOW TABLES").status();
  EXPECT_NE(status.ToString().find("SHOW QUERIES"), std::string::npos);
  EXPECT_NE(status.ToString().find("SHOW PROFILE"), std::string::npos);
}

TEST(StatementParserTest, DumpTraceTakesAQuotedPath) {
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       ParseStatement("DUMP TRACE '/tmp/trace.json'"));
  ASSERT_TRUE(std::holds_alternative<DumpTraceStatement>(stmt));
  EXPECT_EQ(std::get<DumpTraceStatement>(stmt).path, "/tmp/trace.json");
  EXPECT_FALSE(IsWriteStatement(stmt));

  // A doubled quote escapes a literal quote inside the string.
  ASSERT_OK_AND_ASSIGN(stmt, ParseStatement("dump trace 'it''s.json'"));
  ASSERT_TRUE(std::holds_alternative<DumpTraceStatement>(stmt));
  EXPECT_EQ(std::get<DumpTraceStatement>(stmt).path, "it's.json");

  EXPECT_FALSE(ParseStatement("DUMP").ok());
  EXPECT_FALSE(ParseStatement("DUMP TRACE").ok());
  EXPECT_FALSE(ParseStatement("DUMP TRACE bare_word").ok());
  EXPECT_FALSE(ParseStatement("DUMP TRACE ''").ok());
  EXPECT_FALSE(ParseStatement("DUMP TRACE '/a' '/b'").ok());
  // An unterminated string literal dies in the lexer with its offset.
  Status status = ParseStatement("DUMP TRACE '/tmp/trace").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("unterminated"), std::string::npos)
      << status.ToString();
}

TEST(StatementParserTest, InsertParsesPointLists) {
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       ParseStatement("INSERT INTO s1 VALUES (10, 1.5)"));
  ASSERT_TRUE(std::holds_alternative<InsertStatement>(stmt));
  const auto& insert = std::get<InsertStatement>(stmt);
  EXPECT_EQ(insert.series, "s1");
  ASSERT_EQ(insert.points.size(), 1u);
  EXPECT_EQ(insert.points[0].first, 10);
  EXPECT_EQ(insert.points[0].second, 1.5);
  EXPECT_TRUE(IsWriteStatement(stmt));

  ASSERT_OK_AND_ASSIGN(
      stmt, ParseStatement("insert into s2 values (1, -2), (2, 3e2)"));
  const auto& multi = std::get<InsertStatement>(stmt);
  EXPECT_EQ(multi.series, "s2");
  ASSERT_EQ(multi.points.size(), 2u);
  EXPECT_EQ(multi.points[0].first, 1);
  EXPECT_EQ(multi.points[0].second, -2.0);
  EXPECT_EQ(multi.points[1].first, 2);
  EXPECT_EQ(multi.points[1].second, 300.0);
}

TEST(StatementParserTest, InsertRejectsMalformedInput) {
  EXPECT_FALSE(ParseStatement("INSERT").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO s1").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO s1 VALUES").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO s1 VALUES (1)").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO s1 VALUES (1, 2").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO s1 VALUES (1, 2),").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO s1 VALUES (1, 2) extra").ok());
  // Timestamps must be integers; values may be any number.
  EXPECT_FALSE(ParseStatement("INSERT INTO s1 VALUES (1.5, 2)").ok());
  Status status = ParseStatement("INSERT INTO s1 VALUES (1.5, 2)").status();
  EXPECT_NE(status.ToString().find("integer timestamp"), std::string::npos)
      << status.ToString();
}

TEST(StatementParserTest, SetSyntaxErrorNamesValidKnobs) {
  Status status = ParseStatement("SET parallelism =").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("partition_interval_ms"),
            std::string::npos)
      << status.ToString();
}

TEST(StatementParserTest, SetAcceptsBareWordValues) {
  // Word values parse (read_tolerance takes them); whether a given knob
  // accepts a word is decided at execution, not here.
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       ParseStatement("SET read_tolerance = strict"));
  const auto& set = std::get<SetStatement>(stmt);
  EXPECT_EQ(set.name, "read_tolerance");
  ASSERT_TRUE(set.text.has_value());
  EXPECT_EQ(*set.text, "strict");
}

}  // namespace
}  // namespace tsviz::sql
