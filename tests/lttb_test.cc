#include "viz/lttb.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "m4/reference.h"
#include "test_util.h"
#include "viz/pixel_diff.h"
#include "viz/rasterize.h"

namespace tsviz {
namespace {

std::vector<Point> NoisySeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  Timestamp t = 0;
  double v = 0;
  for (size_t i = 0; i < n; ++i) {
    points.push_back(Point{t, v});
    t += rng.Uniform(1, 10);
    v += rng.Gaussian(0, 3);
  }
  return points;
}

TEST(LttbTest, DegenerateInputs) {
  EXPECT_TRUE(DownsampleLttb({}, 10).empty());
  std::vector<Point> one = {{5, 1.0}};
  EXPECT_EQ(DownsampleLttb(one, 10), one);
  std::vector<Point> two = {{5, 1.0}, {6, 2.0}};
  EXPECT_EQ(DownsampleLttb(two, 10), two);
  EXPECT_EQ(DownsampleLttb(two, 2), two);
  EXPECT_EQ(DownsampleLttb(two, 1).size(), 1u);
}

TEST(LttbTest, KeepsEndpointsAndRequestedCount) {
  std::vector<Point> points = NoisySeries(5000, 1);
  for (size_t n_out : {3u, 10u, 100u, 999u}) {
    std::vector<Point> reduced = DownsampleLttb(points, n_out);
    ASSERT_EQ(reduced.size(), n_out);
    EXPECT_EQ(reduced.front(), points.front());
    EXPECT_EQ(reduced.back(), points.back());
    // Output stays sorted by time and is a subset of the input.
    for (size_t i = 1; i < reduced.size(); ++i) {
      EXPECT_GT(reduced[i].t, reduced[i - 1].t);
    }
  }
}

TEST(LttbTest, OutputIsSubsetOfInput) {
  std::vector<Point> points = NoisySeries(1000, 2);
  std::vector<Point> reduced = DownsampleLttb(points, 50);
  for (const Point& p : reduced) {
    EXPECT_TRUE(std::find(points.begin(), points.end(), p) != points.end());
  }
}

TEST(LttbTest, CapturesSpikes) {
  // A flat series with one huge spike: LTTB must keep the spike point.
  std::vector<Point> points;
  for (int i = 0; i < 1000; ++i) {
    points.push_back(Point{i, i == 617 ? 1000.0 : 0.0});
  }
  std::vector<Point> reduced = DownsampleLttb(points, 20);
  bool has_spike = false;
  for (const Point& p : reduced) {
    if (p.v == 1000.0) has_spike = true;
  }
  EXPECT_TRUE(has_spike);
}

TEST(LttbTest, BetterThanStridedSamplingButNotPixelPerfect) {
  std::vector<Point> points = NoisySeries(20000, 3);
  M4Query query{0, points.back().t + 1, 100};
  CanvasSpec spec = FitCanvas(points, query, 100, 80);
  Bitmap truth = RasterizeSeries(points, spec);

  Bitmap lttb = RasterizeSeries(DownsampleLttb(points, 400), spec);
  std::vector<Point> strided;
  for (size_t i = 0; i < points.size(); i += points.size() / 400) {
    strided.push_back(points[i]);
  }
  Bitmap sampled = RasterizeSeries(strided, spec);

  uint64_t lttb_err = PixelDiff(truth, lttb);
  uint64_t sampled_err = PixelDiff(truth, sampled);
  EXPECT_GT(lttb_err, 0u);              // unlike M4, LTTB is lossy
  EXPECT_LT(lttb_err, sampled_err);     // but far better than striding
}

}  // namespace
}  // namespace tsviz
