// Failure-injection sweeps: random corruption anywhere in the on-disk state
// must surface as a Status error or clean recovery — never a crash, hang, or
// silent wrong answer that the checksums should have caught.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "common/random.h"
#include "encoding/page.h"
#include "m4/m4_udf.h"
#include "read/series_reader.h"
#include "storage/chunk_metadata.h"
#include "storage/wal.h"
#include "test_util.h"

namespace tsviz {
namespace {

namespace fs = std::filesystem;

StoreConfig TestConfig(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 50;
  config.memtable_flush_threshold = 50;
  config.encoding.page_size_points = 16;
  return config;
}

void FlipByteAt(const std::string& path, size_t pos, uint8_t mask) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(pos));
  char c;
  f.read(&c, 1);
  f.seekp(static_cast<std::streamoff>(pos));
  c = static_cast<char>(c ^ mask);
  f.write(&c, 1);
}

// Builds a store, flips one random byte of the data file, and checks that
// every outcome is clean: open fails, or open succeeds and reads either
// fail or return data.
class DataFileFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DataFileFuzz, SingleByteFlipNeverCrashes) {
  Rng rng(GetParam());
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(TestConfig(dir.path())));
    ASSERT_OK(store->WriteAll(MakeLinearSeries(200, 0, 10)));
    ASSERT_OK(store->Flush());
    ASSERT_OK(store->DeleteRange(TimeRange(50, 120)));
  }
  std::string data_file = dir.path() + "/f1.tsdat";
  auto size = fs::file_size(data_file);
  for (int flip = 0; flip < 16; ++flip) {
    size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(size) - 1));
    uint8_t mask = static_cast<uint8_t>(rng.Uniform(1, 255));
    FlipByteAt(data_file, pos, mask);

    auto store = TsStore::Open(TestConfig(dir.path()));
    if (store.ok()) {
      // Metadata survived (flip hit the data region or was masked):
      // reading chunk data must fail cleanly or produce points.
      for (const ChunkHandle& handle : (*store)->chunks()) {
        LazyChunk chunk(handle, nullptr);
        auto points = chunk.ReadAllPoints();
        if (points.ok()) {
          EXPECT_EQ(points->size(), handle.meta->count);
        }
      }
      auto m4 = RunM4Udf(**store, M4Query{0, 2000, 8}, nullptr);
      (void)m4;  // any Status is fine; absence of UB is the assertion
      store->reset();
    }
    FlipByteAt(data_file, pos, mask);  // restore for the next round
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataFileFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

TEST(FuzzTest, GarbageModsFileRejected) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(TestConfig(dir.path())));
    ASSERT_OK(store->WriteAll(MakeLinearSeries(50, 0, 10)));
  }
  {
    std::ofstream mods(dir.path() + "/deletes.mods", std::ios::binary);
    mods << "not a mods file at all";
  }
  EXPECT_EQ(TsStore::Open(TestConfig(dir.path())).status().code(),
            StatusCode::kCorruption);
}

TEST(FuzzTest, GarbageWalIsSkippedAsTornTail) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(TestConfig(dir.path())));
    ASSERT_OK(store->WriteAll(MakeLinearSeries(50, 0, 10)));
    ASSERT_OK(store->Flush());
  }
  {
    std::ofstream wal(dir.path() + "/wal.log", std::ios::binary);
    std::string junk(300, '\x5a');
    wal.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  // The whole log reads as a torn tail: recovered store has an empty
  // memtable but intact flushed data.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  EXPECT_EQ(store->memtable_size(), 0u);
  EXPECT_EQ(store->TotalStoredPoints(), 50u);
}

// Random-bytes decoders: every parser must reject garbage via Status.
class RandomBytesFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomBytesFuzz, ParsersRejectGarbage) {
  Rng rng(GetParam());
  std::string junk;
  size_t n = static_cast<size_t>(rng.Uniform(0, 500));
  for (size_t i = 0; i < n; ++i) {
    junk.push_back(static_cast<char>(rng.Uniform(0, 255)));
  }

  {
    std::vector<Point> out;
    (void)DecodePage(junk, &out);  // must not crash
  }
  {
    std::string_view cursor = junk;
    (void)ChunkMetadata::Deserialize(&cursor);
  }
  {
    std::string_view cursor = junk;
    (void)StepRegressionModel::Deserialize(&cursor);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBytesFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace tsviz
