#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/random.h"
#include "m4/m4_lsm.h"
#include "m4/m4_udf.h"
#include "read/series_reader.h"
#include "test_util.h"
#include "workload/generator.h"
#include "workload/ooo.h"

namespace tsviz {
namespace {

StoreConfig TestConfig(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 50;
  config.memtable_flush_threshold = 50;
  config.encoding.page_size_points = 16;
  return config;
}

TEST(CompactionTest, EmptyStoreIsNoop) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->Compact());
  EXPECT_TRUE(store->chunks().empty());
}

TEST(CompactionTest, MergesOverwritesAndAppliesDeletes) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  for (int i = 0; i < 100; ++i) ASSERT_OK(store->Write(i, 1.0));  // 2 chunks
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i * 2, 2.0));
  ASSERT_OK(store->Flush());
  ASSERT_OK(store->DeleteRange(TimeRange(90, 99)));
  ASSERT_GT(store->OverlapFraction(), 0.0);

  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> before,
      ReadMergedSeries(*store, TimeRange(0, 200), nullptr));
  ASSERT_OK(store->Compact());

  // Post-conditions: no tombstones, disjoint chunks, one data file, and the
  // merged view is unchanged.
  EXPECT_TRUE(store->deletes().empty());
  EXPECT_EQ(store->OverlapFraction(), 0.0);
  EXPECT_EQ(store->TotalStoredPoints(), before.size());
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> after,
      ReadMergedSeries(*store, TimeRange(0, 200), nullptr));
  EXPECT_EQ(after, before);
  for (const Point& p : after) {
    EXPECT_EQ(p.v, p.t % 2 == 0 ? 2.0 : 1.0) << "t=" << p.t;
    EXPECT_LT(p.t, 90);
  }
}

TEST(CompactionTest, EverythingDeletedLeavesEmptyStore) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i, 1.0));
  ASSERT_OK(store->DeleteRange(TimeRange(kMinTimestamp, kMaxTimestamp)));
  ASSERT_OK(store->Compact());
  EXPECT_TRUE(store->chunks().empty());
  EXPECT_EQ(store->TotalStoredPoints(), 0u);
}

TEST(CompactionTest, SurvivesReopen) {
  TempDir dir;
  std::vector<Point> before;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(TestConfig(dir.path())));
    for (int i = 0; i < 200; ++i) ASSERT_OK(store->Write(i * 3, i * 0.5));
    ASSERT_OK(store->Flush());
    ASSERT_OK(store->DeleteRange(TimeRange(30, 60)));
    ASSERT_OK(store->Compact());
    ASSERT_OK_AND_ASSIGN(
        before, ReadMergedSeries(*store, TimeRange(0, 1000), nullptr));
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  EXPECT_TRUE(store->deletes().empty());
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> after,
      ReadMergedSeries(*store, TimeRange(0, 1000), nullptr));
  EXPECT_EQ(after, before);
}

TEST(CompactionTest, WritesContinueAfterCompaction) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i, 1.0));
  ASSERT_OK(store->Compact());
  // Overwrite compacted data: the new chunk has a higher version.
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i, 9.0));
  ASSERT_OK(store->Flush());
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> merged,
      ReadMergedSeries(*store, TimeRange(0, 100), nullptr));
  ASSERT_EQ(merged.size(), 50u);
  for (const Point& p : merged) EXPECT_EQ(p.v, 9.0);
}

// Property: M4 results are invariant under compaction.
class CompactionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompactionProperty, M4ResultsUnchanged) {
  Rng rng(GetParam());
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  const Timestamp domain = 3000;
  int n_rounds = static_cast<int>(rng.Uniform(2, 6));
  for (int round = 0; round < n_rounds; ++round) {
    if (round > 0 && rng.Bernoulli(0.5)) {
      Timestamp start = rng.Uniform(0, domain);
      ASSERT_OK(store->DeleteRange(
          TimeRange(start, start + rng.Uniform(1, domain / 4))));
    }
    int n = static_cast<int>(rng.Uniform(20, 150));
    Timestamp base = rng.Uniform(0, domain / 2);
    for (int i = 0; i < n; ++i) {
      ASSERT_OK(store->Write(base + rng.Uniform(0, domain / 2),
                             std::round(rng.Gaussian(0, 30))));
    }
    ASSERT_OK(store->Flush());
  }

  M4Query query{0, domain, rng.Uniform(1, 60)};
  ASSERT_OK_AND_ASSIGN(M4Result before_lsm, RunM4Lsm(*store, query, nullptr));
  ASSERT_OK(store->Compact());
  ASSERT_OK_AND_ASSIGN(M4Result after_lsm, RunM4Lsm(*store, query, nullptr));
  ASSERT_OK_AND_ASSIGN(M4Result after_udf, RunM4Udf(*store, query, nullptr));
  EXPECT_TRUE(ResultsEquivalent(before_lsm, after_lsm))
      << "seed " << GetParam() << ": "
      << FirstMismatch(before_lsm, after_lsm);
  EXPECT_TRUE(ResultsEquivalent(after_lsm, after_udf))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace tsviz
