#include "workload/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_util.h"

namespace tsviz {
namespace {

DatasetSpec SmallSpec(DatasetKind kind, size_t n = 20000) {
  DatasetSpec spec;
  spec.kind = kind;
  spec.num_points = n;
  return spec;
}

class AllDatasets : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(AllDatasets, ProducesRequestedCountStrictlyIncreasing) {
  std::vector<Point> points = GenerateDataset(SmallSpec(GetParam()));
  ASSERT_EQ(points.size(), 20000u);
  for (size_t i = 1; i < points.size(); ++i) {
    ASSERT_GT(points[i].t, points[i - 1].t) << "at " << i;
  }
  for (const Point& p : points) {
    ASSERT_TRUE(std::isfinite(p.v));
  }
}

TEST_P(AllDatasets, DeterministicForSameSeed) {
  std::vector<Point> a = GenerateDataset(SmallSpec(GetParam(), 5000));
  std::vector<Point> b = GenerateDataset(SmallSpec(GetParam(), 5000));
  EXPECT_EQ(a, b);
}

TEST_P(AllDatasets, DifferentSeedsDiffer) {
  DatasetSpec spec = SmallSpec(GetParam(), 5000);
  std::vector<Point> a = GenerateDataset(spec);
  spec.seed = 777;
  std::vector<Point> b = GenerateDataset(spec);
  EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllDatasets,
    ::testing::ValuesIn(AllDatasetKinds()),
    [](const ::testing::TestParamInfo<DatasetKind>& info) {
      return DatasetName(info.param);
    });

TEST(GeneratorTest, PaperPointCountsMatchTable2) {
  EXPECT_EQ(PaperPointCount(DatasetKind::kBallSpeed), 7193200u);
  EXPECT_EQ(PaperPointCount(DatasetKind::kMf03), 10000000u);
  EXPECT_EQ(PaperPointCount(DatasetKind::kKob), 1943180u);
  EXPECT_EQ(PaperPointCount(DatasetKind::kRcvTime), 1330764u);
}

TEST(GeneratorTest, NamesMatchPaper) {
  EXPECT_EQ(DatasetName(DatasetKind::kBallSpeed), "BallSpeed");
  EXPECT_EQ(DatasetName(DatasetKind::kMf03), "MF03");
  EXPECT_EQ(DatasetName(DatasetKind::kKob), "KOB");
  EXPECT_EQ(DatasetName(DatasetKind::kRcvTime), "RcvTime");
}

// Chunk-interval skew: cut the series into 1000-point batches and compare
// interval lengths. KOB/RcvTime must be far more skewed than
// BallSpeed/MF03 — this drives Figures 10 and 14.
double IntervalSkew(DatasetKind kind) {
  std::vector<Point> points = GenerateDataset(SmallSpec(kind, 50000));
  std::vector<double> lengths;
  for (size_t b = 0; b + 1000 <= points.size(); b += 1000) {
    lengths.push_back(
        static_cast<double>(points[b + 999].t - points[b].t));
  }
  double max_len = *std::max_element(lengths.begin(), lengths.end());
  double min_len = *std::min_element(lengths.begin(), lengths.end());
  return max_len / std::max(1.0, min_len);
}

TEST(GeneratorTest, KobAndRcvTimeAreTimeSkewed) {
  double ballspeed = IntervalSkew(DatasetKind::kBallSpeed);
  double kob = IntervalSkew(DatasetKind::kKob);
  double rcvtime = IntervalSkew(DatasetKind::kRcvTime);
  EXPECT_GT(kob, ballspeed * 3);
  EXPECT_GT(rcvtime, ballspeed * 3);
}

TEST(GeneratorTest, CadencesRoughlyMatchDatasets) {
  // BallSpeed ~2kHz (500us), MF03 ~100Hz (10ms): check median deltas.
  auto median_delta = [](DatasetKind kind) {
    std::vector<Point> points = GenerateDataset(SmallSpec(kind, 10001));
    std::vector<int64_t> deltas;
    for (size_t i = 1; i < points.size(); ++i) {
      deltas.push_back(points[i].t - points[i - 1].t);
    }
    std::nth_element(deltas.begin(), deltas.begin() + 5000, deltas.end());
    return deltas[5000];
  };
  EXPECT_EQ(median_delta(DatasetKind::kBallSpeed), 500);
  EXPECT_EQ(median_delta(DatasetKind::kMf03), 10000);
}

}  // namespace
}  // namespace tsviz
