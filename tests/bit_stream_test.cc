#include "encoding/bit_stream.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "test_util.h"

namespace tsviz {
namespace {

TEST(BitStreamTest, SingleBits) {
  BitWriter writer;
  writer.WriteBit(true);
  writer.WriteBit(false);
  writer.WriteBit(true);
  std::string bytes = writer.Finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0b10100000);

  BitReader reader(bytes);
  ASSERT_OK_AND_ASSIGN(bool b1, reader.ReadBit());
  ASSERT_OK_AND_ASSIGN(bool b2, reader.ReadBit());
  ASSERT_OK_AND_ASSIGN(bool b3, reader.ReadBit());
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_TRUE(b3);
}

TEST(BitStreamTest, MultiBitValuesCrossByteBoundaries) {
  BitWriter writer;
  writer.WriteBits(0b101, 3);
  writer.WriteBits(0xdead, 16);
  writer.WriteBits(0x1ffffffffull, 33);
  std::string bytes = writer.Finish();

  BitReader reader(bytes);
  ASSERT_OK_AND_ASSIGN(uint64_t a, reader.ReadBits(3));
  ASSERT_OK_AND_ASSIGN(uint64_t b, reader.ReadBits(16));
  ASSERT_OK_AND_ASSIGN(uint64_t c, reader.ReadBits(33));
  EXPECT_EQ(a, 0b101u);
  EXPECT_EQ(b, 0xdeadu);
  EXPECT_EQ(c, 0x1ffffffffull);
}

TEST(BitStreamTest, Full64BitValue) {
  BitWriter writer;
  writer.WriteBits(0xfedcba9876543210ull, 64);
  std::string bytes = writer.Finish();
  BitReader reader(bytes);
  ASSERT_OK_AND_ASSIGN(uint64_t v, reader.ReadBits(64));
  EXPECT_EQ(v, 0xfedcba9876543210ull);
}

TEST(BitStreamTest, WriterMasksHighBits) {
  BitWriter writer;
  writer.WriteBits(0xff, 4);  // only the low 4 bits count
  std::string bytes = writer.Finish();
  BitReader reader(bytes);
  ASSERT_OK_AND_ASSIGN(uint64_t v, reader.ReadBits(4));
  EXPECT_EQ(v, 0xfu);
}

TEST(BitStreamTest, ZeroBitWriteAndRead) {
  BitWriter writer;
  writer.WriteBits(123, 0);
  EXPECT_EQ(writer.bit_count(), 0u);
  std::string bytes = writer.Finish();
  EXPECT_TRUE(bytes.empty());
  BitReader reader(bytes);
  ASSERT_OK_AND_ASSIGN(uint64_t v, reader.ReadBits(0));
  EXPECT_EQ(v, 0u);
}

TEST(BitStreamTest, ReadPastEndIsCorruption) {
  BitWriter writer;
  writer.WriteBits(0b1010, 4);
  std::string bytes = writer.Finish();  // padded to 8 bits
  BitReader reader(bytes);
  ASSERT_OK(reader.ReadBits(8).status());
  EXPECT_EQ(reader.ReadBits(1).status().code(), StatusCode::kCorruption);
}

TEST(BitStreamTest, InvalidBitCountRejected) {
  BitReader reader("somedata");
  EXPECT_EQ(reader.ReadBits(65).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reader.ReadBits(-1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BitStreamTest, RandomRoundTrip) {
  Rng rng(99);
  std::vector<std::pair<uint64_t, int>> items;
  BitWriter writer;
  for (int i = 0; i < 2000; ++i) {
    int bits = static_cast<int>(rng.Uniform(1, 64));
    uint64_t value = static_cast<uint64_t>(rng.Uniform(0, 1 << 30)) *
                     static_cast<uint64_t>(rng.Uniform(0, 1 << 30));
    if (bits < 64) value &= (uint64_t{1} << bits) - 1;
    items.emplace_back(value, bits);
    writer.WriteBits(value, bits);
  }
  std::string bytes = writer.Finish();
  BitReader reader(bytes);
  for (const auto& [value, bits] : items) {
    ASSERT_OK_AND_ASSIGN(uint64_t decoded, reader.ReadBits(bits));
    ASSERT_EQ(decoded, value);
  }
}

}  // namespace
}  // namespace tsviz
