#include "encoding/page.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "test_util.h"

namespace tsviz {
namespace {

std::vector<Point> SamplePoints(size_t n) {
  std::vector<Point> points;
  for (size_t i = 0; i < n; ++i) {
    points.push_back(Point{static_cast<Timestamp>(1000 + i * 7),
                           static_cast<Value>(i) * 0.5 - 3.0});
  }
  return points;
}

class PageCodecMatrix
    : public ::testing::TestWithParam<std::tuple<TsCodec, ValueCodec>> {};

TEST_P(PageCodecMatrix, RoundTripsAllCodecCombinations) {
  auto [ts_codec, value_codec] = GetParam();
  std::vector<Point> points = SamplePoints(500);
  std::string blob;
  PageInfo info;
  ASSERT_OK(EncodePage(points.data(), points.size(), ts_codec, value_codec,
                       &blob, &info));
  EXPECT_EQ(info.count, 500u);
  EXPECT_EQ(info.min_t, points.front().t);
  EXPECT_EQ(info.max_t, points.back().t);
  EXPECT_EQ(info.offset, 0u);
  EXPECT_EQ(info.length, blob.size());

  std::vector<Point> decoded;
  ASSERT_OK(DecodePage(blob, &decoded));
  EXPECT_EQ(decoded, points);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, PageCodecMatrix,
    ::testing::Combine(::testing::Values(TsCodec::kPlain, TsCodec::kTs2Diff),
                       ::testing::Values(ValueCodec::kPlain,
                                         ValueCodec::kGorilla)));

TEST(PageTest, EmptyPageRejected) {
  std::string blob;
  EXPECT_EQ(EncodePage(nullptr, 0, TsCodec::kTs2Diff, ValueCodec::kGorilla,
                       &blob, nullptr)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PageTest, AppendsAfterExistingBytes) {
  std::vector<Point> points = SamplePoints(10);
  std::string blob = "prefix";
  PageInfo info;
  ASSERT_OK(EncodePage(points.data(), points.size(), TsCodec::kTs2Diff,
                       ValueCodec::kGorilla, &blob, &info));
  EXPECT_EQ(info.offset, 6u);
  std::vector<Point> decoded;
  ASSERT_OK(DecodePage(std::string_view(blob).substr(info.offset,
                                                     info.length),
                       &decoded));
  EXPECT_EQ(decoded, points);
}

TEST(PageTest, ChecksumDetectsEveryByteFlip) {
  std::vector<Point> points = SamplePoints(50);
  std::string blob;
  ASSERT_OK(EncodePage(points.data(), points.size(), TsCodec::kTs2Diff,
                       ValueCodec::kGorilla, &blob, nullptr));
  Rng rng(3);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupt = blob;
    size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(blob.size()) - 1));
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    std::vector<Point> decoded;
    EXPECT_FALSE(DecodePage(corrupt, &decoded).ok())
        << "flip at byte " << pos << " undetected";
  }
}

TEST(PageTest, TruncationDetected) {
  std::vector<Point> points = SamplePoints(50);
  std::string blob;
  ASSERT_OK(EncodePage(points.data(), points.size(), TsCodec::kTs2Diff,
                       ValueCodec::kGorilla, &blob, nullptr));
  for (size_t keep : {size_t{0}, size_t{4}, blob.size() / 2,
                      blob.size() - 1}) {
    std::vector<Point> decoded;
    EXPECT_FALSE(
        DecodePage(std::string_view(blob).substr(0, keep), &decoded).ok());
  }
}

TEST(PageTest, SinglePointPage) {
  Point p{42, 3.5};
  std::string blob;
  PageInfo info;
  ASSERT_OK(EncodePage(&p, 1, TsCodec::kTs2Diff, ValueCodec::kGorilla, &blob,
                       &info));
  EXPECT_EQ(info.min_t, 42);
  EXPECT_EQ(info.max_t, 42);
  std::vector<Point> decoded;
  ASSERT_OK(DecodePage(blob, &decoded));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], p);
}

TEST(PageTest, DecodeAppendsToExistingOutput) {
  std::vector<Point> points = SamplePoints(5);
  std::string blob;
  ASSERT_OK(EncodePage(points.data(), points.size(), TsCodec::kPlain,
                       ValueCodec::kPlain, &blob, nullptr));
  std::vector<Point> out = {Point{-1, -1.0}};
  ASSERT_OK(DecodePage(blob, &out));
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], (Point{-1, -1.0}));
  EXPECT_EQ(out[1], points[0]);
}

}  // namespace
}  // namespace tsviz
