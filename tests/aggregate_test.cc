#include "m4/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"
#include "m4/reference.h"
#include "test_util.h"

namespace tsviz {
namespace {

StoreConfig TestConfig(const std::string& dir) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 40;
  config.memtable_flush_threshold = 40;
  config.encoding.page_size_points = 16;
  return config;
}

// Naive per-span aggregation over a merged series.
std::vector<AggregateRow> NaiveGroupBy(const std::vector<Point>& merged,
                                       const M4Query& query,
                                       Aggregation aggregation) {
  SpanSet spans(query);
  std::vector<uint64_t> counts(static_cast<size_t>(spans.num_spans()));
  std::vector<double> sums(counts.size());
  std::vector<double> mins(counts.size());
  std::vector<double> maxs(counts.size());
  std::vector<double> firsts(counts.size());
  std::vector<double> lasts(counts.size());
  for (const Point& p : merged) {
    if (!spans.InQueryRange(p.t)) continue;
    size_t i = static_cast<size_t>(spans.IndexOf(p.t));
    if (counts[i] == 0) {
      mins[i] = maxs[i] = firsts[i] = p.v;
    } else {
      mins[i] = std::min(mins[i], p.v);
      maxs[i] = std::max(maxs[i], p.v);
    }
    lasts[i] = p.v;
    sums[i] += p.v;
    ++counts[i];
  }
  std::vector<AggregateRow> rows(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    rows[i].has_data = true;
    switch (aggregation) {
      case Aggregation::kFirstValue:
        rows[i].value = firsts[i];
        break;
      case Aggregation::kLastValue:
        rows[i].value = lasts[i];
        break;
      case Aggregation::kMin:
        rows[i].value = mins[i];
        break;
      case Aggregation::kMax:
        rows[i].value = maxs[i];
        break;
      case Aggregation::kCount:
        rows[i].value = static_cast<double>(counts[i]);
        break;
      case Aggregation::kSum:
        rows[i].value = sums[i];
        break;
      case Aggregation::kAvg:
        rows[i].value = sums[i] / static_cast<double>(counts[i]);
        break;
    }
  }
  return rows;
}

constexpr Aggregation kAllAggregations[] = {
    Aggregation::kFirstValue, Aggregation::kLastValue, Aggregation::kMin,
    Aggregation::kMax,        Aggregation::kCount,     Aggregation::kSum,
    Aggregation::kAvg};

TEST(AggregateTest, MergeFreeClassification) {
  EXPECT_TRUE(IsMergeFree(Aggregation::kFirstValue));
  EXPECT_TRUE(IsMergeFree(Aggregation::kLastValue));
  EXPECT_TRUE(IsMergeFree(Aggregation::kMin));
  EXPECT_TRUE(IsMergeFree(Aggregation::kMax));
  EXPECT_FALSE(IsMergeFree(Aggregation::kCount));
  EXPECT_FALSE(IsMergeFree(Aggregation::kSum));
  EXPECT_FALSE(IsMergeFree(Aggregation::kAvg));
}

TEST(AggregateTest, SimpleSeriesAllAggregations) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  std::vector<Point> points;
  for (int i = 0; i < 80; ++i) {
    points.push_back(Point{i * 5, static_cast<double>((i * 11) % 23)});
  }
  ASSERT_OK(store->WriteAll(points));
  ASSERT_OK(store->Flush());

  M4Query query{0, 400, 8};
  for (Aggregation aggregation : kAllAggregations) {
    ASSERT_OK_AND_ASSIGN(
        std::vector<AggregateRow> rows,
        RunGroupBy(*store, query, aggregation, nullptr));
    std::vector<AggregateRow> expected =
        NaiveGroupBy(points, query, aggregation);
    ASSERT_EQ(rows.size(), expected.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].has_data, expected[i].has_data);
      EXPECT_DOUBLE_EQ(rows[i].value, expected[i].value)
          << "agg " << static_cast<int>(aggregation) << " span " << i;
    }
  }
}

TEST(AggregateTest, MergeFreeAggsAvoidChunkLoads) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->WriteAll(MakeLinearSeries(400, 0, 10)));
  ASSERT_OK(store->Flush());
  // Spans aligned with whole chunks.
  M4Query query{0, 4000, 2};
  QueryStats min_stats;
  ASSERT_OK(RunGroupBy(*store, query, Aggregation::kMin, &min_stats)
                .status());
  EXPECT_EQ(min_stats.chunks_loaded, 0u);
  QueryStats count_stats;
  ASSERT_OK(RunGroupBy(*store, query, Aggregation::kCount, &count_stats)
                .status());
  EXPECT_EQ(count_stats.chunks_loaded, 10u);  // scan path loads everything
}

TEST(AggregateTest, InvalidQueryRejected) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  EXPECT_FALSE(
      RunGroupBy(*store, M4Query{0, 0, 4}, Aggregation::kMin, nullptr).ok());
}

class AggregateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregateProperty, MatchesNaiveOnMessyStores) {
  Rng rng(GetParam());
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  const Timestamp domain = 2000;
  for (int round = 0; round < 4; ++round) {
    if (round > 0 && rng.Bernoulli(0.5)) {
      Timestamp start = rng.Uniform(0, domain);
      ASSERT_OK(store->DeleteRange(
          TimeRange(start, start + rng.Uniform(1, domain / 5))));
    }
    int n = static_cast<int>(rng.Uniform(10, 120));
    for (int i = 0; i < n; ++i) {
      ASSERT_OK(store->Write(rng.Uniform(0, domain),
                             std::round(rng.Gaussian(0, 40))));
    }
    ASSERT_OK(store->Flush());
  }
  std::vector<Point> merged =
      ReferenceMerge(DumpChunks(*store), DumpDeletes(*store));

  M4Query query{rng.Uniform(0, 100), 0, rng.Uniform(1, 40)};
  query.tqe = query.tqs + rng.Uniform(1, domain);
  for (Aggregation aggregation : kAllAggregations) {
    ASSERT_OK_AND_ASSIGN(
        std::vector<AggregateRow> rows,
        RunGroupBy(*store, query, aggregation, nullptr));
    std::vector<AggregateRow> expected =
        NaiveGroupBy(merged, query, aggregation);
    ASSERT_EQ(rows.size(), expected.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i].has_data, expected[i].has_data)
          << "seed " << GetParam() << " span " << i;
      ASSERT_NEAR(rows[i].value, expected[i].value, 1e-9)
          << "seed " << GetParam() << " agg "
          << static_cast<int>(aggregation) << " span " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace tsviz
