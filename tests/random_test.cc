#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace tsviz {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDegenerateRange) {
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Uniform(7, 7), 7);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
  // Out-of-range probabilities clamp instead of misbehaving.
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(4);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(5);
  const int64_t n = 1000;
  std::vector<int> histogram(static_cast<size_t>(n), 0);
  for (int i = 0; i < 20000; ++i) {
    int64_t v = rng.Zipf(n, 1.2);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    ++histogram[static_cast<size_t>(v)];
  }
  // Rank 0 dominates the tail under Zipf skew.
  EXPECT_GT(histogram[0], histogram[100] * 5);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(6);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace tsviz
