#include "net/net_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace tsviz::net {
namespace {

using namespace std::chrono_literals;

// Spins until `pred` holds, failing the test after `timeout`.
template <typename Pred>
bool WaitFor(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

// Raw blocking client; `rcvbuf` shrinks SO_RCVBUF before connect so the
// slow-reader test controls how many bytes the kernel absorbs.
class RawClient {
 public:
  explicit RawClient(int port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool connected() const { return connected_; }
  int fd() const { return fd_; }

  void Send(const std::string& data) {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }

  // Reads until the blank-line terminator; empty return means EOF first.
  // Pipelined replies may share one recv, so leftover bytes stay buffered
  // for the next call.
  std::string ReadReply() {
    char chunk[4096];
    while (buffer_.find("\n\n") == std::string::npos) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        std::string rest = std::move(buffer_);
        buffer_.clear();
        return rest;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    size_t end = buffer_.find("\n\n");
    std::string reply = buffer_.substr(0, end + 2);
    buffer_.erase(0, end + 2);
    return reply;
  }

  // Reads exactly `bytes` bytes (or until EOF).
  std::string ReadExactly(size_t bytes) {
    std::string data = std::move(buffer_);
    buffer_.clear();
    char chunk[4096];
    while (data.size() < bytes) {
      size_t want = std::min(sizeof(chunk), bytes - data.size());
      ssize_t n = ::recv(fd_, chunk, want, 0);
      if (n <= 0) break;
      data.append(chunk, static_cast<size_t>(n));
    }
    if (data.size() > bytes) {
      buffer_ = data.substr(bytes);
      data.resize(bytes);
    }
    return data;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;  // bytes received past the last returned reply
};

// The echo handler every basic test uses: "echo:<line>\n\n", quit closes.
Handler EchoHandler() {
  return [](const Request& request) {
    if (request.line == "quit") return Response{"", /*close=*/true};
    return Response{"echo:" + request.line + "\n\n", false};
  };
}

TEST(NetServerTest, PipelinedStatementsAnswerInOrder) {
  NetServer server({}, EchoHandler());
  ASSERT_TRUE(server.Start(0).ok());

  obs::Counter& pipelined = obs::GetCounter("net_requests_pipelined_total");
  uint64_t pipelined_before = pipelined.value();

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Ten statements in one send — one read on the server side.
  std::string batch;
  for (int i = 0; i < 10; ++i) {
    batch += "stmt" + std::to_string(i) + "\n";
  }
  client.Send(batch);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client.ReadReply(), "echo:stmt" + std::to_string(i) + "\n\n");
  }
  EXPECT_GE(pipelined.value(), pipelined_before + 1);
  server.Stop();
}

// A run of consecutive batchable statements pending on one connection is
// dispatched as ONE work item to the batch handler; non-batchable lines and
// singleton runs still go through the per-statement handler. Replies stay in
// order. The test pins the worker on a gate statement so the burst is fully
// parsed into the pending queue before dispatch — making the accumulation
// deterministic.
TEST(NetServerTest, ConsecutiveBatchableLinesDispatchAsOneItem) {
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> gate_entered{false};
  std::atomic<int> batch_calls{0};
  std::atomic<int> largest_batch{0};

  NetServerOptions options;
  options.workers = 1;
  options.batchable = [](const std::string& line) {
    return !line.empty() && line[0] == 'b';
  };
  options.batch_handler = [&](const std::vector<Request>& requests) {
    batch_calls++;
    int size = static_cast<int>(requests.size());
    int prev = largest_batch.load();
    while (prev < size && !largest_batch.compare_exchange_weak(prev, size)) {
    }
    std::vector<Response> out;
    for (const Request& request : requests) {
      out.push_back({"echo:" + request.line + "\n\n", false});
    }
    return out;
  };
  Handler handler = [&](const Request& request) {
    if (request.line == "gate") {
      gate_entered = true;
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return release; });
    }
    return Response{"echo:" + request.line + "\n\n", false};
  };
  NetServer server(options, handler);
  ASSERT_TRUE(server.Start(0).ok());

  obs::Counter& accumulated = obs::GetCounter("batch_net_accumulated_total");
  uint64_t accumulated_before = accumulated.value();

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("gate\n");
  ASSERT_TRUE(WaitFor([&] { return gate_entered.load(); }));
  // The worker is pinned; these five lines can only pile up as pending.
  client.Send("b1\nb2\nb3\nplain\nb4\n");
  // Let the loop absorb the burst before releasing the gate.
  std::this_thread::sleep_for(100ms);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();

  EXPECT_EQ(client.ReadReply(), "echo:gate\n\n");
  for (const char* expected : {"b1", "b2", "b3", "plain", "b4"}) {
    EXPECT_EQ(client.ReadReply(), std::string("echo:") + expected + "\n\n");
  }
  // b1..b3 ran as one batched item; plain and the singleton b4 did not.
  EXPECT_EQ(batch_calls.load(), 1);
  EXPECT_EQ(largest_batch.load(), 3);
  EXPECT_EQ(accumulated.value() - accumulated_before, 2u);
  server.Stop();
}

// A shed batch answers every statement it carried with its own shed reply.
TEST(NetServerTest, ShedBatchAnswersEveryStatement) {
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> gate_entered{false};

  NetServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;  // the gate occupies the only slot's successor
  options.batchable = [](const std::string& line) {
    return !line.empty() && line[0] == 'b';
  };
  options.batch_handler = [&](const std::vector<Request>& requests) {
    std::vector<Response> out;
    for (const Request& request : requests) {
      out.push_back({"echo:" + request.line + "\n\n", false});
    }
    return out;
  };
  Handler handler = [&](const Request& request) {
    if (request.line == "gate") {
      gate_entered = true;
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return release; });
    }
    return Response{"echo:" + request.line + "\n\n", false};
  };
  NetServer server(options, handler);
  ASSERT_TRUE(server.Start(0).ok());

  // Pin the only worker on the gate, then occupy the queue's only slot from
  // a second connection (each connection holds at most one item in flight,
  // so a third connection is what overflows the queue).
  RawClient gatekeeper(server.port());
  ASSERT_TRUE(gatekeeper.connected());
  gatekeeper.Send("gate\n");
  ASSERT_TRUE(WaitFor([&] { return gate_entered.load(); }));
  RawClient occupier(server.port());
  ASSERT_TRUE(occupier.connected());
  occupier.Send("y\n");
  std::this_thread::sleep_for(50ms);

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("b1\nb2\nb3\n");
  // Each statement of the shed batch gets its own error reply.
  std::string shed = NetServerOptions{}.shed_reply;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.ReadReply(), shed) << "statement " << i;
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  EXPECT_EQ(gatekeeper.ReadReply(), "echo:gate\n\n");
  EXPECT_EQ(occupier.ReadReply(), "echo:y\n\n");
  server.Stop();
}

TEST(NetServerTest, CrlfAndBlankLinesAreTolerated) {
  NetServer server({}, EchoHandler());
  ASSERT_TRUE(server.Start(0).ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("a\r\n\r\n\nb\n");
  EXPECT_EQ(client.ReadReply(), "echo:a\n\n");
  EXPECT_EQ(client.ReadReply(), "echo:b\n\n");
  server.Stop();
}

TEST(NetServerTest, CloseResponseEndsTheConnection) {
  NetServer server({}, EchoHandler());
  ASSERT_TRUE(server.Start(0).ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("a\nquit\nnever-executed\n");
  EXPECT_EQ(client.ReadReply(), "echo:a\n\n");
  // quit answers nothing and closes; the third statement is dropped.
  EXPECT_EQ(client.ReadReply(), "");
  server.Stop();
}

TEST(NetServerTest, SlowReaderIsSuspendedWhileOthersProgress) {
  constexpr size_t kPayload = 1 << 20;  // far beyond both socket buffers
  NetServerOptions options;
  options.outbuf_suspend_bytes = 4 * 1024;
  options.outbuf_resume_bytes = 1024;
  options.sndbuf_bytes = 4 * 1024;
  NetServer server(std::move(options), [](const Request& request) {
    if (request.line == "big") {
      return Response{std::string(kPayload, 'x'), false};
    }
    return Response{"echo:" + request.line + "\n\n", false};
  });
  ASSERT_TRUE(server.Start(0).ok());

  obs::Gauge& suspended = obs::GetGauge("net_suspended_connections");
  obs::Counter& suspensions = obs::GetCounter("net_reads_suspended_total");
  double suspended_before = suspended.value();
  uint64_t suspensions_before = suspensions.value();

  RawClient slow(server.port(), /*rcvbuf=*/4 * 1024);
  ASSERT_TRUE(slow.connected());
  slow.Send("big\n");
  // The reply cannot fit the kernel buffers, the outbound buffer crosses
  // the watermark, and the loop suspends the connection's reads.
  EXPECT_TRUE(WaitFor([&] { return suspended.value() > suspended_before; }));
  EXPECT_GT(suspensions.value(), suspensions_before);

  // A second client is unaffected while the first is suspended.
  RawClient fast(server.port());
  ASSERT_TRUE(fast.connected());
  fast.Send("hello\n");
  EXPECT_EQ(fast.ReadReply(), "echo:hello\n\n");

  // Draining the payload resumes the slow connection's reads...
  EXPECT_EQ(slow.ReadExactly(kPayload).size(), kPayload);
  EXPECT_TRUE(WaitFor([&] { return suspended.value() <= suspended_before; }));
  // ...and it serves statements again.
  slow.Send("after\n");
  EXPECT_EQ(slow.ReadReply(), "echo:after\n\n");
  server.Stop();
}

TEST(NetServerTest, AdmissionControlRejectsExcessConnections) {
  NetServerOptions options;
  options.max_connections = [] { return 2; };
  NetServer server(std::move(options), EchoHandler());
  ASSERT_TRUE(server.Start(0).ok());

  obs::Counter& rejections = obs::GetCounter("net_admission_rejections_total");
  uint64_t rejections_before = rejections.value();

  RawClient a(server.port());
  RawClient b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  // Round-trips guarantee both connections are registered on the loop
  // before the third arrives.
  a.Send("x\n");
  EXPECT_EQ(a.ReadReply(), "echo:x\n\n");
  b.Send("y\n");
  EXPECT_EQ(b.ReadReply(), "echo:y\n\n");

  RawClient c(server.port());
  ASSERT_TRUE(c.connected());  // accepted by the kernel, rejected in-band
  EXPECT_EQ(c.ReadReply(), "ERROR: server busy\n\n");
  EXPECT_EQ(rejections.value(), rejections_before + 1);

  // Closing an admitted connection frees the slot for a newcomer.
  a.Close();
  obs::Gauge& open = obs::GetGauge("net_connections_open");
  EXPECT_TRUE(WaitFor([&] {
    RawClient d(server.port());
    if (!d.connected()) return false;
    d.Send("z\n");
    return d.ReadReply() == "echo:z\n\n";
  }));
  (void)open;
  server.Stop();
}

TEST(NetServerTest, FullQueueShedsWithFastError) {
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> handler_entered{0};

  NetServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  NetServer server(std::move(options), [&](const Request& request) {
    if (request.line == "block") {
      handler_entered.fetch_add(1);
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return release; });
    }
    return Response{"done:" + request.line + "\n\n", false};
  });
  ASSERT_TRUE(server.Start(0).ok());

  obs::Counter& shed = obs::GetCounter("net_requests_shed_total");
  obs::Gauge& depth = obs::GetGauge("net_queue_depth");
  uint64_t shed_before = shed.value();
  double depth_before = depth.value();

  // A occupies the only worker...
  RawClient a(server.port());
  ASSERT_TRUE(a.connected());
  a.Send("block\n");
  ASSERT_TRUE(WaitFor([&] { return handler_entered.load() == 1; }));
  // ...B fills the only queue slot...
  RawClient b(server.port());
  ASSERT_TRUE(b.connected());
  b.Send("queued\n");
  ASSERT_TRUE(WaitFor([&] { return depth.value() >= depth_before + 1; }));
  // ...so C's request is shed immediately, without blocking the loop.
  RawClient c(server.port());
  ASSERT_TRUE(c.connected());
  c.Send("shed-me\n");
  EXPECT_EQ(c.ReadReply(), "ERROR: server overloaded, request queue full\n\n");
  EXPECT_EQ(shed.value(), shed_before + 1);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  EXPECT_EQ(a.ReadReply(), "done:block\n\n");
  EXPECT_EQ(b.ReadReply(), "done:queued\n\n");
  server.Stop();
}

TEST(NetServerTest, ClientClosingMidStatementFreesTheSlot) {
  NetServerOptions options;
  options.max_connections = [] { return 1; };
  NetServer server(std::move(options), EchoHandler());
  ASSERT_TRUE(server.Start(0).ok());

  obs::Gauge& open = obs::GetGauge("net_connections_open");
  double open_before = open.value();
  {
    RawClient client(server.port());
    ASSERT_TRUE(client.connected());
    client.Send("partial statement without a newline");
    EXPECT_TRUE(WaitFor([&] { return open.value() == open_before + 1; }));
  }  // abrupt close mid-statement
  // The loop reaps the connection: no wedged slot, no leaked gauge.
  EXPECT_TRUE(WaitFor([&] { return open.value() == open_before; }));

  // With max_connections = 1, the freed slot admits a fresh client.
  RawClient next(server.port());
  ASSERT_TRUE(next.connected());
  next.Send("hello\n");
  EXPECT_EQ(next.ReadReply(), "echo:hello\n\n");
  server.Stop();
}

TEST(NetServerTest, HalfCloseStillAnswersPipelinedWork) {
  NetServer server({}, EchoHandler());
  ASSERT_TRUE(server.Start(0).ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("a\nb\n");
  ::shutdown(client.fd(), SHUT_WR);  // half-close: done sending
  EXPECT_EQ(client.ReadReply(), "echo:a\n\n");
  EXPECT_EQ(client.ReadReply(), "echo:b\n\n");
  EXPECT_EQ(client.ReadReply(), "");  // then the server closes
  server.Stop();
}

TEST(NetServerTest, StopUnblocksClientsAndIsIdempotent) {
  NetServer server({}, EchoHandler());
  ASSERT_TRUE(server.Start(0).ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  server.Stop();
  server.Stop();  // idempotent
  std::string data = "x\n";
  (void)::send(client.fd(), data.data(), data.size(), MSG_NOSIGNAL);
  EXPECT_EQ(client.ReadReply(), "");  // terminates, never hangs

  // A stopped server restarts cleanly.
  ASSERT_TRUE(server.Start(0).ok());
  RawClient again(server.port());
  ASSERT_TRUE(again.connected());
  again.Send("y\n");
  EXPECT_EQ(again.ReadReply(), "echo:y\n\n");
  server.Stop();
}

TEST(NetServerTest, LifecycleHooksReportRequestCounts) {
  std::atomic<int> opens{0};
  std::atomic<int> closes{0};
  std::atomic<uint64_t> last_requests{0};
  NetServerOptions options;
  options.on_open = [&] { opens.fetch_add(1); };
  options.on_close = [&](uint64_t requests, double millis) {
    closes.fetch_add(1);
    last_requests.store(requests);
    EXPECT_GE(millis, 0.0);
  };
  NetServer server(std::move(options), EchoHandler());
  ASSERT_TRUE(server.Start(0).ok());
  {
    RawClient client(server.port());
    ASSERT_TRUE(client.connected());
    client.Send("a\nb\n");
    EXPECT_EQ(client.ReadReply(), "echo:a\n\n");
    EXPECT_EQ(client.ReadReply(), "echo:b\n\n");
  }
  EXPECT_TRUE(WaitFor([&] { return closes.load() == 1; }));
  EXPECT_EQ(opens.load(), 1);
  EXPECT_EQ(last_requests.load(), 2u);
  server.Stop();
}

}  // namespace
}  // namespace tsviz::net
