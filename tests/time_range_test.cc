#include "common/time_range.h"

#include <gtest/gtest.h>

namespace tsviz {
namespace {

TEST(TimeRangeTest, ContainsIsInclusiveBothEnds) {
  TimeRange r(10, 20);
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(20));
  EXPECT_TRUE(r.Contains(15));
  EXPECT_FALSE(r.Contains(9));
  EXPECT_FALSE(r.Contains(21));
}

TEST(TimeRangeTest, SinglePointRange) {
  TimeRange r(5, 5);
  EXPECT_FALSE(r.Empty());
  EXPECT_TRUE(r.Contains(5));
  EXPECT_EQ(r.Length(), 1u);
}

TEST(TimeRangeTest, EmptyRange) {
  TimeRange r(6, 5);
  EXPECT_TRUE(r.Empty());
  EXPECT_FALSE(r.Contains(5));
  EXPECT_FALSE(r.Contains(6));
  EXPECT_EQ(r.Length(), 0u);
}

TEST(TimeRangeTest, OverlapsIsSymmetricAndInclusive) {
  TimeRange a(0, 10);
  TimeRange b(10, 20);  // touching at one timestamp overlaps
  TimeRange c(11, 20);
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_FALSE(c.Overlaps(a));
}

TEST(TimeRangeTest, CoversRequiresFullContainment) {
  TimeRange outer(0, 100);
  EXPECT_TRUE(outer.Covers(TimeRange(0, 100)));
  EXPECT_TRUE(outer.Covers(TimeRange(10, 90)));
  EXPECT_FALSE(outer.Covers(TimeRange(-1, 50)));
  EXPECT_FALSE(outer.Covers(TimeRange(50, 101)));
}

TEST(TimeRangeTest, IntersectOfDisjointIsEmpty) {
  TimeRange r = TimeRange(0, 10).Intersect(TimeRange(20, 30));
  EXPECT_TRUE(r.Empty());
}

TEST(TimeRangeTest, IntersectOfOverlapping) {
  TimeRange r = TimeRange(0, 15).Intersect(TimeRange(10, 30));
  EXPECT_EQ(r, TimeRange(10, 15));
}

TEST(TimeRangeTest, LengthSaturatesOnFullDomain) {
  TimeRange r(kMinTimestamp, kMaxTimestamp);
  EXPECT_EQ(r.Length(), std::numeric_limits<uint64_t>::max());
}

TEST(TimeRangeTest, ContainsAtSentinels) {
  TimeRange r(kMinTimestamp, 0);
  EXPECT_TRUE(r.Contains(kMinTimestamp));
  EXPECT_TRUE(r.Contains(0));
  EXPECT_FALSE(r.Contains(1));
}

TEST(TimeRangeTest, ToStringIsReadable) {
  EXPECT_EQ(TimeRange(3, 9).ToString(), "[3, 9]");
}

}  // namespace
}  // namespace tsviz
