#include "workload/deletes.h"

#include <gtest/gtest.h>

#include <memory>

#include "test_util.h"

namespace tsviz {
namespace {

class DeleteWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StoreConfig config;
    config.data_dir = dir_.path();
    config.points_per_chunk = 100;
    config.memtable_flush_threshold = 100;
    auto store = TsStore::Open(config);
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
    ASSERT_OK(store_->WriteAll(MakeLinearSeries(2000, 0, 10)));
    ASSERT_OK(store_->Flush());
    ASSERT_EQ(store_->chunks().size(), 20u);
  }

  TempDir dir_;
  std::unique_ptr<TsStore> store_;
};

TEST_F(DeleteWorkloadTest, CountTracksDeleteFraction) {
  DeleteWorkloadSpec spec;
  spec.delete_fraction = 0.25;
  EXPECT_EQ(PlanDeleteRanges(*store_, spec).size(), 5u);  // 25% of 20 chunks
  spec.delete_fraction = 0.0;
  EXPECT_TRUE(PlanDeleteRanges(*store_, spec).empty());
  spec.delete_fraction = 2.0;  // more deletes than chunks is allowed
  EXPECT_EQ(PlanDeleteRanges(*store_, spec).size(), 40u);
}

TEST_F(DeleteWorkloadTest, RangesLieWithinDataAndScaleWithSpec) {
  DeleteWorkloadSpec small;
  small.delete_fraction = 1.0;
  small.range_scale = 0.1;
  DeleteWorkloadSpec large = small;
  large.range_scale = 1.0;

  TimeRange data = store_->DataInterval();
  uint64_t small_total = 0;
  uint64_t large_total = 0;
  for (const TimeRange& r : PlanDeleteRanges(*store_, small)) {
    EXPECT_GE(r.start, data.start);
    EXPECT_FALSE(r.Empty());
    small_total += r.Length();
  }
  for (const TimeRange& r : PlanDeleteRanges(*store_, large)) {
    large_total += r.Length();
  }
  EXPECT_GT(large_total, small_total * 5);
}

TEST_F(DeleteWorkloadTest, DeterministicInSeed) {
  DeleteWorkloadSpec spec;
  spec.delete_fraction = 0.5;
  EXPECT_EQ(PlanDeleteRanges(*store_, spec), PlanDeleteRanges(*store_, spec));
  DeleteWorkloadSpec other = spec;
  other.seed = 99;
  EXPECT_NE(PlanDeleteRanges(*store_, spec),
            PlanDeleteRanges(*store_, other));
}

TEST_F(DeleteWorkloadTest, ApplyRegistersTombstones) {
  DeleteWorkloadSpec spec;
  spec.delete_fraction = 0.3;
  ASSERT_OK(ApplyDeleteWorkload(store_.get(), spec));
  EXPECT_EQ(store_->deletes().size(), 6u);
  // Versions are newer than every chunk.
  Version max_chunk_version = 0;
  for (const ChunkHandle& chunk : store_->chunks()) {
    max_chunk_version = std::max(max_chunk_version, chunk.meta->version);
  }
  for (const DeleteRecord& del : store_->deletes()) {
    EXPECT_GT(del.version, max_chunk_version);
  }
}

TEST(DeleteWorkloadEmptyStoreTest, NoChunksNoDeletes) {
  TempDir dir;
  StoreConfig config;
  config.data_dir = dir.path();
  auto store = TsStore::Open(config);
  ASSERT_TRUE(store.ok());
  DeleteWorkloadSpec spec;
  spec.delete_fraction = 1.0;
  EXPECT_TRUE(PlanDeleteRanges(**store, spec).empty());
}

}  // namespace
}  // namespace tsviz
